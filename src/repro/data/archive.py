"""The 39-dataset UCR-surrogate archive.

The paper evaluates on 39 datasets added to the UCR archive after summer
2015 (Section 4.1).  The archive cannot be redistributed, so this module
generates a deterministic synthetic surrogate for every dataset:

* identical names, class counts and both train/test orientations (the
  UEA-UCR repository swaps train/test for several datasets — the paper
  calls out FordA explicitly; the registry records which);
* sizes and lengths scaled down (bounded by :data:`MAX_TRAIN` /
  :data:`MAX_TEST` / length buckets) so the full paper evaluation runs on
  a laptop in minutes rather than days;
* per-dataset generator archetypes matching the original domain (shape
  outlines, ECG, device load profiles, audio/vibration, spectra, motion,
  embedded shapelets) and a difficulty knob roughly mirroring how hard
  each dataset is in the paper's Table 2/3.

Everything is seeded from the dataset name, so repeated loads — across
processes — return identical data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset, TrainTestSplit
from repro.data.generators import ClassSpec, generate_class_samples

#: Caps applied when scaling the original archive sizes.
MAX_TRAIN = 60
MAX_TEST = 60
MIN_PER_CLASS_TRAIN = 3
MIN_PER_CLASS_TEST = 2


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: paper metadata plus surrogate generation recipe."""

    name: str
    n_classes: int
    paper_train: int  # Table 2 orientation
    paper_test: int
    paper_length: int
    archetype: str
    difficulty: float  # 0 (easy) .. 1 (hard); scales class overlap/noise
    swapped_in_table3: bool = False

    @property
    def train_size(self) -> int:
        """Scaled surrogate training-set size (Table 2 orientation)."""
        return _scale_size(self.paper_train, self.n_classes, MAX_TRAIN, MIN_PER_CLASS_TRAIN)

    @property
    def test_size(self) -> int:
        """Scaled surrogate test-set size (Table 2 orientation)."""
        return _scale_size(self.paper_test, self.n_classes, MAX_TEST, MIN_PER_CLASS_TEST)

    @property
    def length(self) -> int:
        """Scaled surrogate series length."""
        return _scale_length(self.paper_length)


def _scale_size(original: int, n_classes: int, cap: int, min_per_class: int) -> int:
    """Cap ``original`` at ``cap`` but keep at least ``min_per_class`` samples
    per class (never exceeding the original size)."""
    floor = min_per_class * n_classes
    scaled = min(original, cap)
    if scaled < floor:
        scaled = min(original, floor)
    return scaled


def _scale_length(original: int) -> int:
    if original <= 96:
        return 64
    if original <= 256:
        return 96
    if original <= 512:
        return 128
    return 160


# name, k, train, test, length, archetype, difficulty, swapped
_REGISTRY_ROWS: tuple[tuple, ...] = (
    ("ArrowHead", 3, 36, 175, 251, "outline", 0.70, False),
    ("BeetleFly", 2, 20, 20, 512, "outline", 0.30, False),
    ("BirdChicken", 2, 20, 20, 512, "outline", 0.20, False),
    ("Computers", 2, 250, 250, 720, "device", 0.55, False),
    ("DistalPhalanxOutlineAgeGroup", 3, 139, 400, 80, "outline", 0.45, True),
    ("DistalPhalanxOutlineCorrect", 2, 276, 600, 80, "outline", 0.50, True),
    ("DistalPhalanxTW", 6, 139, 400, 80, "outline", 0.65, True),
    ("ECG5000", 5, 500, 4500, 140, "ecg", 0.30, False),
    ("Earthquakes", 2, 139, 322, 512, "sensor", 0.55, True),
    ("ElectricDevices", 7, 8926, 7711, 96, "device", 0.60, False),
    ("FordA", 2, 1320, 3601, 500, "vibration", 0.15, True),
    ("FordB", 2, 810, 3636, 500, "vibration", 0.45, True),
    ("Ham", 2, 109, 105, 431, "spectral", 0.60, False),
    ("HandOutlines", 2, 370, 1000, 2709, "outline", 0.45, True),
    ("Herring", 2, 64, 64, 512, "outline", 0.65, False),
    ("InsectWingbeatSound", 11, 220, 1980, 256, "vibration", 0.75, False),
    ("LargeKitchenAppliances", 3, 375, 375, 720, "device", 0.55, False),
    ("Meat", 3, 60, 60, 448, "spectral", 0.25, False),
    ("MiddlePhalanxOutlineAgeGroup", 3, 154, 400, 80, "outline", 0.55, True),
    ("MiddlePhalanxOutlineCorrect", 2, 291, 600, 80, "outline", 0.60, True),
    ("MiddlePhalanxTW", 6, 154, 399, 80, "outline", 0.75, True),
    ("PhalangesOutlinesCorrect", 2, 1800, 858, 80, "outline", 0.50, False),
    ("Phoneme", 39, 214, 1896, 1024, "vibration", 0.90, False),
    ("ProximalPhalanxOutlineAgeGroup", 3, 400, 205, 80, "outline", 0.40, False),
    ("ProximalPhalanxOutlineCorrect", 2, 600, 291, 80, "outline", 0.40, False),
    ("ProximalPhalanxTW", 6, 205, 400, 80, "outline", 0.55, True),
    ("RefrigerationDevices", 3, 375, 375, 720, "device", 0.70, False),
    ("ScreenType", 3, 375, 375, 720, "device", 0.75, False),
    ("ShapeletSim", 2, 20, 180, 500, "pattern", 0.20, False),
    ("ShapesAll", 60, 600, 600, 512, "outline", 0.65, False),
    ("SmallKitchenAppliances", 3, 375, 375, 720, "device", 0.45, False),
    ("Strawberry", 2, 370, 613, 235, "spectral", 0.25, True),
    ("ToeSegmentation1", 2, 40, 228, 277, "motion", 0.50, False),
    ("ToeSegmentation2", 2, 36, 130, 343, "motion", 0.45, False),
    ("UWaveGestureLibraryAll", 8, 896, 3582, 945, "motion", 0.40, False),
    ("Wine", 2, 57, 54, 234, "spectral", 0.80, False),
    ("WordSynonyms", 25, 267, 638, 270, "outline", 0.80, False),
    ("Worms", 5, 77, 181, 900, "motion", 0.65, True),
    ("WormsTwoClass", 2, 77, 181, 900, "motion", 0.55, True),
)

ARCHIVE_METADATA: dict[str, DatasetSpec] = {
    row[0]: DatasetSpec(
        name=row[0],
        n_classes=row[1],
        paper_train=row[2],
        paper_test=row[3],
        paper_length=row[4],
        archetype=row[5],
        difficulty=row[6],
        swapped_in_table3=row[7],
    )
    for row in _REGISTRY_ROWS
}


def archive_dataset_names() -> tuple[str, ...]:
    """All 39 dataset names, in the paper's (alphabetical) order."""
    return tuple(ARCHIVE_METADATA)


# ---------------------------------------------------------------------------
# Archetype class-spec builders.  Each receives the number of classes, a
# difficulty in [0, 1] and a seeded Generator, and returns one ClassSpec per
# class.  Larger difficulty => more parameter overlap and more noise.
# ---------------------------------------------------------------------------


def _outline_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    """Outline classes share one global bump skeleton and differ in *local*
    texture: bump sharpness, small centre offsets and ripple frequency.
    Raw-distance methods see nearly identical global shapes (further
    blurred by affine jitter and shifts); visibility-graph statistics see
    the texture."""
    specs = []
    pool = 8
    base_centers = np.sort(rng.uniform(0.08, 0.92, size=pool))
    base_heights = rng.uniform(0.8, 2.0, size=pool) * rng.choice([-1, 1], size=pool)
    base_widths = rng.uniform(0.04, 0.09, size=pool)
    for _ in range(k):
        # Each class activates a subset of the shared bump pool — for
        # many-class datasets this adds combinatorial diversity while
        # keeping the global profile family identical.
        n_active = int(rng.integers(5, pool))
        active = np.sort(rng.choice(pool, size=n_active, replace=False))
        width_scale = float(rng.uniform(0.55, 1.7))
        centers = np.clip(
            base_centers[active]
            + rng.normal(0, 0.015 + 0.02 * (1 - difficulty), n_active),
            0.05,
            0.95,
        )
        specs.append(
            ClassSpec(
                family="bumps",
                params={
                    "centers": centers,
                    "widths": base_widths[active] * width_scale,
                    "heights": base_heights[active],
                    "ripple_amp": float(rng.uniform(0.15, 0.50)),
                    "ripple_freq": float(rng.uniform(8.0, 45.0)),
                },
                noise=(0.08 + 0.25 * difficulty) * float(rng.uniform(0.7, 1.4)),
                shift=20,
                spike_rate=float(rng.uniform(0.0, 0.05)),
                spike_amp=float(rng.uniform(2.0, 4.0)),
                warp=0.06 + 0.06 * difficulty,
                amplitude_jitter=0.40,
                offset_jitter=1.2,
            )
        )
    return specs


def _vibration_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    specs = []
    for _ in range(k):
        n_freqs = int(rng.integers(2, 4))
        freqs = rng.uniform(2.0, 20.0, size=n_freqs)
        amps = rng.uniform(0.4, 1.2, size=n_freqs)
        specs.append(
            ClassSpec(
                family="harmonic",
                params={"freqs": freqs, "amps": amps},
                noise=(0.3 + 0.8 * difficulty) * float(rng.uniform(0.75, 1.3)),
                shift=0,
                amplitude_jitter=0.25,
                offset_jitter=0.3,
            )
        )
    return specs


def _device_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    specs = []
    for _ in range(k):
        n_levels = int(rng.integers(2, 4))
        levels = np.concatenate([[0.0], rng.uniform(0.5, 3.0, size=n_levels)])
        specs.append(
            ClassSpec(
                family="steps",
                params={
                    "levels": levels,
                    "n_events": int(rng.integers(2, 8)),
                    "duty": float(rng.uniform(0.2, 0.6)),
                },
                noise=(0.10 + 0.35 * difficulty) * float(rng.uniform(0.7, 1.4)),
                shift=20,
                spike_rate=float(rng.uniform(0.0, 0.04)),
                spike_amp=float(rng.uniform(2.0, 5.0)),
                amplitude_jitter=0.25,
            )
        )
    return specs


def _ecg_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    specs = []
    for _ in range(k):
        specs.append(
            ClassSpec(
                family="ecg",
                params={
                    "n_beats": 2,
                    "p": float(rng.uniform(0.05, 0.35)),
                    "qrs": float(rng.uniform(0.6, 1.4)),
                    "t": float(rng.uniform(0.1, 0.6)) * float(rng.choice([-1, 1])),
                    "st_offset": float(rng.uniform(-0.3, 0.3)),
                },
                noise=0.05 + 0.25 * difficulty,
                shift=8,
                warp=0.04,
            )
        )
    return specs


def _spectral_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    specs = []
    shared = np.sort(rng.uniform(0.15, 0.85, size=4))
    for _ in range(k):
        centers = np.clip(shared + rng.normal(0, 0.02 + 0.03 * (1 - difficulty), 4), 0.05, 0.95)
        widths = rng.uniform(0.03, 0.08, size=4)
        heights = rng.uniform(0.8, 2.2, size=4)
        specs.append(
            ClassSpec(
                family="bumps",
                params={
                    "centers": centers,
                    "widths": widths,
                    "heights": heights,
                    "center_jitter": 0.004,
                },
                noise=0.02 + 0.20 * difficulty,
                shift=0,
            )
        )
    return specs


def _sensor_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    specs = []
    for _ in range(k):
        phi1 = float(rng.uniform(0.2, 0.95))
        phi2 = float(rng.uniform(-0.4, 0.2))
        specs.append(
            ClassSpec(
                family="ar",
                params={"phi": [phi1, phi2]},
                noise=0.1 + 0.4 * difficulty,
            )
        )
    return specs


def _motion_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    specs = []
    for _ in range(k):
        n_freqs = 2
        freqs = rng.uniform(1.0, 6.0, size=n_freqs)
        amps = rng.uniform(0.5, 1.5, size=n_freqs)
        specs.append(
            ClassSpec(
                family="harmonic",
                params={"freqs": freqs, "amps": amps, "phase_jitter": False},
                noise=(0.2 + 0.5 * difficulty) * float(rng.uniform(0.75, 1.3)),
                shift=22,
                spike_rate=float(rng.uniform(0.0, 0.03)),
                warp=0.10,
                amplitude_jitter=0.35,
                offset_jitter=0.5,
            )
        )
    return specs


def _pattern_classes(k: int, difficulty: float, rng: np.random.Generator) -> list[ClassSpec]:
    patterns = ["triangle", "square", "none"]
    return [
        ClassSpec(
            family="embedded_pattern",
            params={"pattern": patterns[i % len(patterns)], "pattern_frac": 0.15},
            noise=0.1 + 0.3 * difficulty,
        )
        for i in range(k)
    ]


_ARCHETYPES = {
    "outline": _outline_classes,
    "vibration": _vibration_classes,
    "device": _device_classes,
    "ecg": _ecg_classes,
    "spectral": _spectral_classes,
    "sensor": _sensor_classes,
    "motion": _motion_classes,
    "pattern": _pattern_classes,
}


def _dataset_seed(name: str) -> int:
    return zlib.crc32(name.encode("utf-8"))


def build_class_specs(spec: DatasetSpec) -> list[ClassSpec]:
    """The per-class generator recipes for a registry entry (deterministic)."""
    rng = np.random.default_rng(_dataset_seed(spec.name))
    try:
        builder = _ARCHETYPES[spec.archetype]
    except KeyError:
        raise ValueError(f"unknown archetype {spec.archetype!r}") from None
    return builder(spec.n_classes, spec.difficulty, rng)


def _class_sizes(total: int, k: int, rng: np.random.Generator, min_size: int) -> np.ndarray:
    """Mildly imbalanced class sizes summing to ``total``."""
    weights = rng.uniform(0.6, 1.4, size=k)
    sizes = np.maximum(np.round(total * weights / weights.sum()).astype(int), min_size)
    # Fix rounding drift against the largest classes.
    while sizes.sum() > total:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < total:
        sizes[int(np.argmin(sizes))] += 1
    return sizes


def load_archive_dataset(
    name: str, orientation: str = "table2", seed: int | None = None
) -> TrainTestSplit:
    """Generate the surrogate dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`archive_dataset_names`.
    orientation:
        ``"table2"`` uses the Table 2 train/test orientation; ``"table3"``
        swaps train and test for the datasets the UEA-UCR repository
        swapped (``DatasetSpec.swapped_in_table3``).
    seed:
        Optional override of the per-dataset seed (for repeat experiments).
    """
    if orientation not in ("table2", "table3"):
        raise ValueError(f"orientation must be 'table2' or 'table3', got {orientation!r}")
    try:
        spec = ARCHIVE_METADATA[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; see archive_dataset_names()"
        ) from None

    rng = np.random.default_rng(_dataset_seed(name) + 1 if seed is None else seed)
    class_specs = build_class_specs(spec)
    n_train, n_test, length = spec.train_size, spec.test_size, spec.length

    train_sizes = _class_sizes(n_train, spec.n_classes, rng, MIN_PER_CLASS_TRAIN)
    test_sizes = _class_sizes(n_test, spec.n_classes, rng, MIN_PER_CLASS_TEST)

    def build(sizes: np.ndarray) -> Dataset:
        blocks, labels = [], []
        for label, (class_spec, size) in enumerate(zip(class_specs, sizes, strict=True)):
            blocks.append(generate_class_samples(class_spec, int(size), length, rng))
            labels.append(np.full(int(size), label, dtype=np.int64))
        X = np.concatenate(blocks)
        y = np.concatenate(labels)
        order = rng.permutation(X.shape[0])
        return Dataset(X[order], y[order], name=name)

    split = TrainTestSplit(train=build(train_sizes), test=build(test_sizes))
    if orientation == "table3" and spec.swapped_in_table3:
        split = split.swapped()
    return split
