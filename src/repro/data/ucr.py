"""Reader for the real UCR Time Series Classification Archive file format.

The archive ships one directory per dataset containing
``<Name>_TRAIN`` / ``<Name>_TEST`` files (optionally with ``.tsv`` or
``.txt`` extensions); each line is ``label, v1, v2, ...`` separated by
commas, tabs or spaces.  Point ``REPRO_UCR_ROOT`` (or the ``root``
argument) at a local copy to run every experiment in this repository on
the genuine data instead of the synthetic surrogate.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset, TrainTestSplit

_SPLIT_SUFFIXES = ("", ".tsv", ".txt", ".csv")


def _find_split_file(directory: Path, name: str, split: str) -> Path:
    for suffix in _SPLIT_SUFFIXES:
        candidate = directory / f"{name}_{split}{suffix}"
        if candidate.is_file():
            return candidate
    raise FileNotFoundError(
        f"no {split} file for dataset {name!r} under {directory}"
    )


def _read_split(path: Path, name: str) -> Dataset:
    rows = []
    labels = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            labels.append(float(parts[0]))
            rows.append([float(v) for v in parts[1:]])
    X = np.asarray(rows, dtype=np.float64)
    # UCR labels may be arbitrary numbers (e.g. -1/1); relabel to 0..k-1.
    raw = np.asarray(labels)
    classes = np.unique(raw)
    y = np.searchsorted(classes, raw)
    return Dataset(X, y.astype(np.int64), name=name)


def load_ucr_dataset(name: str, root: str | os.PathLike | None = None) -> TrainTestSplit:
    """Load dataset ``name`` from a local UCR archive copy.

    ``root`` defaults to the ``REPRO_UCR_ROOT`` environment variable.
    """
    if root is None:
        from repro.api.config import env_ucr_root

        root = env_ucr_root()
    if root is None:
        raise RuntimeError(
            "no UCR archive root: pass root= or set REPRO_UCR_ROOT"
        )
    directory = Path(root) / name
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    train = _read_split(_find_split_file(directory, name, "TRAIN"), name)
    test = _read_split(_find_split_file(directory, name, "TEST"), name)
    if train.length != test.length:
        raise ValueError(
            f"train/test length mismatch for {name}: {train.length} vs {test.length}"
        )
    return TrainTestSplit(train=train, test=test)
