"""Dataset containers shared by the pipeline, baselines and experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def z_normalize(series: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Z-normalise one series or a batch of series (last axis).

    Series with (near-)zero standard deviation are centred only, which
    mirrors the common UCR preprocessing convention and avoids blowing up
    constant subsequences.
    """
    values = np.asarray(series, dtype=np.float64)
    mean = values.mean(axis=-1, keepdims=True)
    std = values.std(axis=-1, keepdims=True)
    return (values - mean) / np.where(std < epsilon, 1.0, std)


@dataclass
class Dataset:
    """A labelled time series collection.

    Attributes
    ----------
    X:
        ``(n_samples, length)`` float array; all series share one length
        (the univariate, equal-length setting of the paper).
    y:
        ``(n_samples,)`` integer class labels.
    name:
        Human-readable dataset name.
    """

    X: np.ndarray
    y: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {self.X.shape}")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(
                f"y shape {self.y.shape} does not match {self.X.shape[0]} samples"
            )

    @property
    def n_samples(self) -> int:
        """Number of series."""
        return self.X.shape[0]

    @property
    def length(self) -> int:
        """Length (dimensionality) of each series."""
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return int(np.unique(self.y).size)

    def classes(self) -> np.ndarray:
        """Sorted distinct labels."""
        return np.unique(self.y)

    def class_counts(self) -> dict[int, int]:
        """Label -> number of samples."""
        labels, counts = np.unique(self.y, return_counts=True)
        return {int(label): int(count) for label, count in zip(labels, counts)}

    def subset(self, indices: np.ndarray) -> "Dataset":
        """New dataset restricted to ``indices`` (copy)."""
        idx = np.asarray(indices)
        return Dataset(self.X[idx].copy(), self.y[idx].copy(), name=self.name)

    def z_normalized(self) -> "Dataset":
        """Copy with every series z-normalised."""
        return Dataset(z_normalize(self.X), self.y.copy(), name=self.name)

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n_samples={self.n_samples}, "
            f"length={self.length}, n_classes={self.n_classes})"
        )


@dataclass
class TrainTestSplit:
    """The default train/test orientation of an archive dataset."""

    train: Dataset
    test: Dataset

    @property
    def name(self) -> str:
        """Dataset name (shared by both halves)."""
        return self.train.name

    def swapped(self) -> "TrainTestSplit":
        """The opposite orientation (the paper notes the UEA-UCR repository
        swaps train and test for several datasets, e.g. FordA)."""
        return TrainTestSplit(train=self.test, test=self.train)
