"""Synthetic time-series generator families.

These families power the UCR-surrogate archive (see
:mod:`repro.data.archive`).  Each family produces a single series of a
requested length from a parameter dictionary and a numpy ``Generator``;
class structure is created by giving each class its own parameters, and
intra-class variation by phase jitter, random circular shifts, smooth
time warping, amplitude scaling and additive noise.

Random shifts/warps intentionally break global alignment: the paper's
motivation is that distance-based methods (1NN-ED) suffer under
misalignment while local/structural methods (shapelets, MVG) do not, and
the surrogate data must reproduce that regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

GeneratorFn = Callable[[int, np.random.Generator, dict], np.ndarray]

_FAMILIES: dict[str, GeneratorFn] = {}


def register_family(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    """Decorator registering a generator family under ``name``."""

    def decorator(fn: GeneratorFn) -> GeneratorFn:
        if name in _FAMILIES:
            raise ValueError(f"generator family {name!r} already registered")
        _FAMILIES[name] = fn
        return fn

    return decorator


def family_names() -> tuple[str, ...]:
    """Registered family names."""
    return tuple(sorted(_FAMILIES))


@register_family("harmonic")
def harmonic(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Sum of sinusoids: ``freqs`` (cycles per series), ``amps``, with
    per-sample random phases when ``phase_jitter`` (default True)."""
    t = np.linspace(0.0, 1.0, length, endpoint=False)
    freqs = np.atleast_1d(np.asarray(params["freqs"], dtype=np.float64))
    amps = np.atleast_1d(np.asarray(params.get("amps", np.ones_like(freqs))))
    jitter = params.get("phase_jitter", True)
    out = np.zeros(length)
    for freq, amp in zip(freqs, amps, strict=True):
        phase = rng.uniform(0, 2 * np.pi) if jitter else 0.0
        out += amp * np.sin(2 * np.pi * freq * t + phase)
    return out


@register_family("bumps")
def gaussian_bumps(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Superposition of Gaussian bumps (outline / spectrum shapes).

    ``centers``, ``widths``, ``heights`` are fractions of the series
    length / amplitudes; ``center_jitter`` perturbs bump locations.
    """
    t = np.linspace(0.0, 1.0, length)
    centers = np.atleast_1d(np.asarray(params["centers"], dtype=np.float64))
    widths = np.atleast_1d(np.asarray(params["widths"], dtype=np.float64))
    heights = np.atleast_1d(np.asarray(params["heights"], dtype=np.float64))
    jitter = params.get("center_jitter", 0.02)
    out = np.zeros(length)
    for center, width, height in zip(centers, widths, heights, strict=True):
        c = center + rng.normal(0.0, jitter)
        out += height * np.exp(-0.5 * ((t - c) / width) ** 2)
    # Optional high-frequency ripple: a *local texture* cue that barely
    # moves raw distances but changes visibility structure markedly.
    ripple_amp = float(params.get("ripple_amp", 0.0))
    if ripple_amp > 0.0:
        ripple_freq = float(params.get("ripple_freq", 16.0))
        phase = rng.uniform(0.0, 2.0 * np.pi)
        out += ripple_amp * np.sin(2.0 * np.pi * ripple_freq * t + phase)
    return out


@register_family("cbf")
def cylinder_bell_funnel(
    length: int, rng: np.random.Generator, params: dict
) -> np.ndarray:
    """The classic cylinder/bell/funnel shapes (``shape`` parameter)."""
    shape = params["shape"]
    a = int(rng.integers(length // 8, length // 3))
    b = int(rng.integers(2 * length // 3, length - length // 8))
    amplitude = 6.0 + rng.normal(0.0, 1.0)
    out = np.zeros(length)
    span = max(b - a, 1)
    idx = np.arange(a, b)
    if shape == "cylinder":
        out[a:b] = amplitude
    elif shape == "bell":
        out[a:b] = amplitude * (idx - a) / span
    elif shape == "funnel":
        out[a:b] = amplitude * (b - idx) / span
    else:
        raise ValueError(f"unknown cbf shape {shape!r}")
    return out


@register_family("random_walk")
def random_walk(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Gaussian random walk with ``drift`` and ``vol``; detrended when
    ``detrend`` (default True) because VGs dislike monotone trends."""
    steps = rng.normal(params.get("drift", 0.0), params.get("vol", 1.0), size=length)
    walk = np.cumsum(steps)
    if params.get("detrend", True):
        t = np.arange(length, dtype=np.float64)
        slope, intercept = np.polyfit(t, walk, 1)
        walk = walk - (slope * t + intercept)
    return walk


@register_family("ar")
def autoregressive(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """AR(p) process with coefficients ``phi`` (list) and unit innovations."""
    phi = np.atleast_1d(np.asarray(params["phi"], dtype=np.float64))
    p = phi.size
    burn = 4 * p + 16
    innov = rng.normal(0.0, 1.0, size=length + burn)
    out = np.zeros(length + burn)
    for i in range(length + burn):
        history = out[max(0, i - p) : i][::-1]
        out[i] = float(phi[: history.size] @ history) + innov[i]
    return out[burn:]


@register_family("logistic_map")
def logistic_map(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Chaotic logistic map ``x <- r x (1 - x)`` with optional noise."""
    r = params.get("r", 4.0)
    x = rng.uniform(0.2, 0.8)
    out = np.empty(length)
    for i in range(length):
        x = r * x * (1.0 - x)
        # Keep the orbit inside (0, 1) for r slightly below/above 4.
        x = min(max(x, 1e-9), 1.0 - 1e-9)
        out[i] = x
    return out


@register_family("steps")
def step_profile(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Piecewise-constant device-usage profile.

    ``levels`` is the palette of power levels, ``n_events`` the expected
    number of on/off events, ``duty`` the fraction of time at high level.
    """
    levels = np.atleast_1d(np.asarray(params.get("levels", [0.0, 1.0])))
    n_events = max(int(params.get("n_events", 4)), 1)
    duty = float(params.get("duty", 0.4))
    out = np.full(length, levels[0], dtype=np.float64)
    for _ in range(int(rng.poisson(n_events)) + 1):
        start = int(rng.integers(0, length))
        duration = max(int(rng.exponential(duty * length / n_events)), 2)
        level = levels[int(rng.integers(1, len(levels)))] if len(levels) > 1 else levels[0]
        out[start : min(start + duration, length)] = level
    return out


@register_family("ecg")
def ecg_beat(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Simplified PQRST heartbeat template repeated ``n_beats`` times.

    The class-defining parameters are wave amplitudes (``p``, ``qrs``,
    ``t``) and the ST-segment ``st_offset`` (elevation/depression), which
    is how arrhythmia classes typically differ.
    """
    n_beats = int(params.get("n_beats", 2))
    p_amp = float(params.get("p", 0.2))
    qrs_amp = float(params.get("qrs", 1.0))
    t_amp = float(params.get("t", 0.35))
    st_offset = float(params.get("st_offset", 0.0))
    beat_len = length / n_beats
    t_axis = np.linspace(0.0, n_beats, length, endpoint=False) % 1.0
    out = np.zeros(length)
    jitter = rng.normal(0.0, 0.01)

    def wave(center: float, width: float, amp: float) -> np.ndarray:
        return amp * np.exp(-0.5 * ((t_axis - center - jitter) / width) ** 2)

    out += wave(0.2, 0.035, p_amp)  # P
    out += wave(0.37, 0.012, -0.15 * qrs_amp)  # Q
    out += wave(0.40, 0.016, qrs_amp)  # R
    out += wave(0.43, 0.012, -0.25 * qrs_amp)  # S
    out += wave(0.62, 0.05, t_amp)  # T
    out += st_offset * ((t_axis > 0.45) & (t_axis < 0.58))
    del beat_len
    return out


@register_family("embedded_pattern")
def embedded_pattern(length: int, rng: np.random.Generator, params: dict) -> np.ndarray:
    """Noise with an optional short characteristic pattern embedded at a
    random position (the ShapeletSim regime).

    ``pattern`` is ``"triangle"``, ``"square"`` or ``"none"``;
    ``pattern_frac`` controls the embedded length.
    """
    out = rng.normal(0.0, 1.0, size=length)
    pattern = params.get("pattern", "none")
    if pattern == "none":
        return out
    plen = max(int(params.get("pattern_frac", 0.15) * length), 4)
    start = int(rng.integers(0, length - plen))
    if pattern == "triangle":
        shape = np.concatenate(
            [np.linspace(0, 1, plen // 2), np.linspace(1, 0, plen - plen // 2)]
        )
    elif pattern == "square":
        shape = np.ones(plen)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    out[start : start + plen] += 5.0 * shape
    return out


@dataclass(frozen=True)
class ClassSpec:
    """Recipe for generating samples of one class.

    Attributes
    ----------
    family:
        Registered generator family name.
    params:
        Family parameters.
    noise:
        Standard deviation of additive Gaussian noise.
    shift:
        Maximum circular shift (samples) applied uniformly at random;
        breaks global alignment.
    warp:
        Strength of a smooth random monotone time warp in [0, 1).
    amplitude_jitter:
        Multiplicative amplitude perturbation standard deviation.  VGs
        are affine-invariant, so this degrades raw-distance methods
        (1NN-ED) without affecting visibility structure — the regime the
        paper's Section 2.1 describes.
    offset_jitter:
        Additive constant offset standard deviation (also affine).
    spike_rate:
        Expected fraction of samples hit by isolated spikes.  Spikes
        create visibility-graph hubs, so per-class spike behaviour is
        the kind of structure captured by degree statistics and
        assortativity rather than motif distributions.
    spike_amp:
        Spike magnitude (in units of the series' standard deviation).
    """

    family: str
    params: dict = field(default_factory=dict)
    noise: float = 0.25
    shift: int = 0
    warp: float = 0.0
    amplitude_jitter: float = 0.0
    offset_jitter: float = 0.0
    spike_rate: float = 0.0
    spike_amp: float = 3.0

    def generate(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """One synthetic series of ``length`` samples."""
        try:
            family_fn = _FAMILIES[self.family]
        except KeyError:
            raise ValueError(f"unknown generator family {self.family!r}") from None
        series = family_fn(length, rng, self.params)
        if self.warp > 0.0:
            series = _time_warp(series, rng, self.warp)
        if self.shift > 0:
            series = np.roll(series, int(rng.integers(-self.shift, self.shift + 1)))
        if self.amplitude_jitter > 0.0:
            series = series * abs(1.0 + rng.normal(0.0, self.amplitude_jitter))
        if self.offset_jitter > 0.0:
            series = series + rng.normal(0.0, self.offset_jitter)
        if self.noise > 0.0:
            series = series + rng.normal(0.0, self.noise, size=length)
        if self.spike_rate > 0.0:
            n_spikes = int(rng.poisson(self.spike_rate * length))
            if n_spikes:
                positions = rng.choice(length, size=min(n_spikes, length), replace=False)
                scale = max(float(series.std()), 1e-9)
                signs = rng.choice([-1.0, 1.0], size=positions.size)
                series = series.copy()
                series[positions] += signs * self.spike_amp * scale
        return series


def _time_warp(series: np.ndarray, rng: np.random.Generator, strength: float) -> np.ndarray:
    """Smooth random monotone time warp via knot perturbation."""
    length = series.size
    n_knots = 4
    knots = np.linspace(0, length - 1, n_knots + 2)
    warped = knots.copy()
    warped[1:-1] += rng.normal(0.0, strength * length / (n_knots + 1), size=n_knots)
    warped = np.sort(warped)
    warped[0], warped[-1] = 0, length - 1
    positions = np.interp(np.arange(length), knots, warped)
    return np.interp(positions, np.arange(length), series)


def generate_class_samples(
    spec: ClassSpec, n_samples: int, length: int, rng: np.random.Generator
) -> np.ndarray:
    """``(n_samples, length)`` array of samples from one class spec."""
    return np.stack([spec.generate(length, rng) for _ in range(n_samples)])
