"""Public time-series augmentation API.

The surrogate archive's intra-class variation (circular shifts, smooth
time warps, affine jitter, additive noise, spikes) is also useful as a
standalone augmentation toolkit — e.g. to stress-test alignment
sensitivity of a classifier, or to oversample minority classes with
*perturbed* copies instead of exact duplicates
(:class:`AugmentingOverSampler`).

All functions take and return ``(length,)`` arrays and accept a numpy
``Generator`` for reproducibility.
"""

from __future__ import annotations

import numpy as np


def random_shift(
    series: np.ndarray, rng: np.random.Generator, max_shift: int
) -> np.ndarray:
    """Circular shift by a uniform offset in ``[-max_shift, max_shift]``."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0:
        return np.asarray(series, dtype=np.float64).copy()
    offset = int(rng.integers(-max_shift, max_shift + 1))
    return np.roll(np.asarray(series, dtype=np.float64), offset)


def time_warp(
    series: np.ndarray, rng: np.random.Generator, strength: float, n_knots: int = 4
) -> np.ndarray:
    """Smooth random monotone time warp (knot-perturbation resampling)."""
    series = np.asarray(series, dtype=np.float64)
    if strength < 0:
        raise ValueError("strength must be non-negative")
    if strength == 0:
        return series.copy()
    length = series.size
    knots = np.linspace(0, length - 1, n_knots + 2)
    warped = knots.copy()
    warped[1:-1] += rng.normal(0.0, strength * length / (n_knots + 1), size=n_knots)
    warped = np.sort(warped)
    warped[0], warped[-1] = 0, length - 1
    positions = np.interp(np.arange(length), knots, warped)
    return np.interp(positions, np.arange(length), series)


def amplitude_scale(
    series: np.ndarray, rng: np.random.Generator, jitter: float
) -> np.ndarray:
    """Multiply by ``|1 + N(0, jitter)|`` (affine; invisible to VGs)."""
    return np.asarray(series, dtype=np.float64) * abs(
        1.0 + float(rng.normal(0.0, jitter))
    )


def add_offset(series: np.ndarray, rng: np.random.Generator, jitter: float) -> np.ndarray:
    """Add a constant ``N(0, jitter)`` offset (affine)."""
    return np.asarray(series, dtype=np.float64) + float(rng.normal(0.0, jitter))


def add_noise(series: np.ndarray, rng: np.random.Generator, sigma: float) -> np.ndarray:
    """Add i.i.d. Gaussian noise."""
    series = np.asarray(series, dtype=np.float64)
    return series + rng.normal(0.0, sigma, size=series.size)


def add_spikes(
    series: np.ndarray,
    rng: np.random.Generator,
    rate: float,
    amplitude: float = 3.0,
) -> np.ndarray:
    """Inject isolated spikes (Poisson-count, ±amplitude·std)."""
    series = np.asarray(series, dtype=np.float64).copy()
    n_spikes = int(rng.poisson(rate * series.size))
    if n_spikes == 0:
        return series
    positions = rng.choice(series.size, size=min(n_spikes, series.size), replace=False)
    scale = max(float(series.std()), 1e-9)
    series[positions] += rng.choice([-1.0, 1.0], size=positions.size) * amplitude * scale
    return series


def augment(
    series: np.ndarray,
    rng: np.random.Generator,
    max_shift: int = 0,
    warp_strength: float = 0.0,
    amplitude_jitter: float = 0.0,
    offset_jitter: float = 0.0,
    noise_sigma: float = 0.0,
    spike_rate: float = 0.0,
) -> np.ndarray:
    """Compose the standard augmentation chain (warp -> shift -> affine ->
    noise -> spikes), mirroring the archive's per-sample pipeline."""
    out = np.asarray(series, dtype=np.float64)
    if warp_strength > 0:
        out = time_warp(out, rng, warp_strength)
    if max_shift > 0:
        out = random_shift(out, rng, max_shift)
    if amplitude_jitter > 0:
        out = amplitude_scale(out, rng, amplitude_jitter)
    if offset_jitter > 0:
        out = add_offset(out, rng, offset_jitter)
    if noise_sigma > 0:
        out = add_noise(out, rng, noise_sigma)
    if spike_rate > 0:
        out = add_spikes(out, rng, spike_rate)
    return out


class AugmentingOverSampler:
    """Balance classes by adding *augmented* minority copies.

    A time-series-aware alternative to
    :class:`repro.ml.resample.RandomOverSampler`: instead of exact
    duplicates, synthetic minority samples are warped/shifted/noised
    perturbations of randomly chosen class members, which reduces the
    duplicate-overfitting the paper's plain oversampling can induce.
    """

    def __init__(
        self,
        max_shift: int = 4,
        warp_strength: float = 0.04,
        noise_sigma: float = 0.05,
        random_state: int | None = None,
    ):
        self.max_shift = max_shift
        self.warp_strength = warp_strength
        self.noise_sigma = noise_sigma
        self.random_state = random_state

    def fit_resample(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return class-balanced ``(X, y)`` with augmented extras appended."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        rng = np.random.default_rng(self.random_state)
        classes, counts = np.unique(y, return_counts=True)
        target = counts.max()
        extra_X, extra_y = [], []
        for cls, count in zip(classes, counts):
            deficit = int(target - count)
            if deficit == 0:
                continue
            members = np.flatnonzero(y == cls)
            for _ in range(deficit):
                source = X[int(rng.choice(members))]
                noise_scale = self.noise_sigma * max(float(source.std()), 1e-9)
                extra_X.append(
                    augment(
                        source,
                        rng,
                        max_shift=self.max_shift,
                        warp_strength=self.warp_strength,
                        noise_sigma=noise_scale,
                    )
                )
                extra_y.append(cls)
        if not extra_X:
            return X.copy(), y.copy()
        return np.concatenate([X, np.stack(extra_X)]), np.concatenate([y, extra_y])
