"""Datasets: containers, synthetic generator families and the archive.

The paper evaluates on 39 datasets of the UCR / UEA-UCR archive.  The
archive itself is not redistributable here, so :mod:`repro.data.archive`
provides a deterministic synthetic surrogate with the same dataset names,
class counts and (scaled) sizes; :mod:`repro.data.ucr` reads the real UCR
file format when a local copy is available.
"""

from repro.data.archive import (
    ARCHIVE_METADATA,
    DatasetSpec,
    archive_dataset_names,
    load_archive_dataset,
)
from repro.data.dataset import Dataset, TrainTestSplit, z_normalize
from repro.data.ucr import load_ucr_dataset

__all__ = [
    "Dataset",
    "TrainTestSplit",
    "z_normalize",
    "DatasetSpec",
    "ARCHIVE_METADATA",
    "archive_dataset_names",
    "load_archive_dataset",
    "load_ucr_dataset",
]
