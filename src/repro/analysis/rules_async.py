"""Blocking-call detection inside event-loop contexts.

Anything that can block for longer than a bookkeeping instant must not
run on the asyncio loop thread: it stalls every connection the loop is
multiplexing.  This rule identifies *loop contexts* and flags known
blocking primitives inside them.

Loop contexts are:

* every ``async def`` (coroutines run on the loop);
* sync functions handed to the loop via ``call_soon`` /
  ``call_soon_threadsafe`` / ``call_later`` / ``call_at`` anywhere in
  the module;
* sync methods of classes deriving from ``asyncio.Protocol`` (and
  friends) — transports invoke them on the loop thread.

Flagged inside those contexts (unless directly ``await``-ed):

* ``time.sleep``, builtin ``open``, ``urlopen``, ``subprocess.*``;
* ``.result()`` / bare ``.join()`` / ``.wait()`` — synchronous rendezvous
  with another thread (``",".join(parts)`` is not flagged: ``str.join``
  always takes an argument);
* ``.acquire()`` without ``blocking=False`` and ``with self.<lock>:``
  where the attribute name looks lock-like;
* ``.get()`` / ``.put()`` on queue-named receivers (``queue.Queue``
  blocks; ``dict.get`` does not);
* socket verbs (``recv``, ``sendall``, ``accept``, ``connect``) and
  ``Path`` file I/O (``read_text`` etc.).

Nested sync ``def``\\ s inside a coroutine are *not* treated as loop
contexts — in this codebase they are handed to worker threads or
executors (e.g. completion callbacks running in the pool).  A nested
def that does run on the loop should be named into a ``call_soon`` to
be picked up, or reviewed by hand.

Deliberate loop-side micro-waits are annotated in place with
``# repro: allow[async-blocking]`` and a justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["AsyncBlockingRule"]

#: `module.func` dotted calls that block.
_BLOCKING_DOTTED = {
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
}

#: bare names that block when called.
_BLOCKING_NAMES = {"open", "urlopen", "input"}

#: method names that block regardless of receiver.
_BLOCKING_METHODS = {
    "recv",
    "recv_into",
    "sendall",
    "accept",
    "connect",
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "urlopen",
}

_LOCKISH_RE = re.compile(r"(?:^|_)(?:lock|mutex|sem|semaphore)(?:_|$)|lock$|mutex$")
_QUEUEISH_RE = re.compile(r"queue|(?:^|_)q$")

#: asyncio base classes whose sync methods run on the loop thread.
_PROTOCOL_BASES = {
    "Protocol",
    "BaseProtocol",
    "BufferedProtocol",
    "DatagramProtocol",
    "SubprocessProtocol",
}

#: loop methods taking a plain callback, and the callback's arg index.
_CALLBACK_SLOTS = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
    "add_done_callback": 0,
}


def _rightmost_name(node: ast.AST) -> str:
    """``foo`` for ``foo``, ``bar`` for ``self.bar`` / ``a.b.bar``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _callback_names(tree: ast.Module) -> set[str]:
    """Names of sync callables scheduled onto the loop anywhere here."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        slot = _CALLBACK_SLOTS.get(node.func.attr)
        if slot is None or len(node.args) <= slot:
            continue
        callback = node.args[slot]
        name = _rightmost_name(callback)
        if name:
            names.add(name)
    return names


def _protocol_classes(tree: ast.Module) -> set[str]:
    classes: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                if _rightmost_name(base) in _PROTOCOL_BASES:
                    classes.add(node.name)
    return classes


class _LoopBodyVisitor(ast.NodeVisitor):
    """Flag blocking constructs inside one loop-context function body."""

    def __init__(
        self,
        rule: "AsyncBlockingRule",
        ctx: ModuleContext,
        fn: str,
        callbacks: frozenset[str] = frozenset(),
    ):
        self.rule = rule
        self.ctx = ctx
        self.fn = fn
        self.callbacks = callbacks
        self.findings: list[Finding] = []

    # Nested sync defs run worker-side (see module docstring) — do not
    # descend, unless the def is named into a loop-callback slot.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name in self.callbacks:
            self.findings.extend(self.rule._scan(self.ctx, node, self.callbacks))

    # A nested coroutine still runs on the loop when awaited.
    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.findings.extend(self.rule._scan(self.ctx, node, self.callbacks))

    def visit_Await(self, node: ast.Await) -> None:
        # An awaited call is the *point* of a coroutine, not a block;
        # descend into its arguments only.
        target = node.value
        if isinstance(target, ast.Call):
            for arg in target.args:
                self.visit(arg)
            for kw in target.keywords:
                self.visit(kw.value)
        else:
            self.visit(target)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and _LOCKISH_RE.search(
                expr.attr.lower()
            ):
                self._flag(
                    expr,
                    f"'with …{expr.attr}:' acquires a thread lock on the "
                    "event loop",
                )
            self.visit(expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.ctx, node, f"{what} in loop context '{self.fn}'"
            )
        )

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                self._flag(node, f"blocking call '{func.id}(…)'")
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver = _rightmost_name(func.value)

        if (receiver, method) in _BLOCKING_DOTTED:
            self._flag(node, f"blocking call '{receiver}.{method}(…)'")
        elif method in _BLOCKING_METHODS:
            self._flag(node, f"blocking call '.{method}(…)'")
        elif method == "result":
            self._flag(node, "blocking 'Future.result()'")
        elif method == "wait":
            self._flag(node, "blocking '.wait()'")
        elif method == "join":
            # str.join always takes one positional argument; a bare or
            # timeout-only .join() is a thread/queue rendezvous.
            if not node.args or any(kw.arg == "timeout" for kw in node.keywords):
                self._flag(node, "blocking '.join()'")
        elif method == "acquire":
            nonblocking = any(
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            ) or (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is False
            )
            if not nonblocking:
                self._flag(node, "blocking '.acquire()'")
        elif method in ("get", "put") and _QUEUEISH_RE.search(receiver.lower()):
            nowait = any(
                kw.arg == "block"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            )
            if not nowait:
                self._flag(node, f"blocking queue '.{method}()'")


class AsyncBlockingRule(Rule):
    id = "async-blocking"
    summary = (
        "no blocking primitives (time.sleep, lock.acquire, queue.get, "
        "file/socket I/O, Future.result) inside coroutines or loop callbacks"
    )
    details = __doc__ or ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        callbacks = frozenset(_callback_names(ctx.tree))
        protocols = _protocol_classes(ctx.tree)

        def walk(node: ast.AST, in_protocol: bool) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, child.name in protocols)
                elif isinstance(child, ast.AsyncFunctionDef):
                    yield from self._scan(ctx, child, callbacks)
                elif isinstance(child, ast.FunctionDef):
                    if in_protocol or child.name in callbacks:
                        yield from self._scan(ctx, child, callbacks)
                    else:
                        # still recurse: a nested class/coroutine inside
                        # a plain function is a loop context of its own.
                        yield from walk(child, False)
                else:
                    yield from walk(child, in_protocol)

        yield from walk(ctx.tree, False)

    def _scan(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        callbacks: frozenset[str] = frozenset(),
    ) -> Iterator[Finding]:
        visitor = _LoopBodyVisitor(self, ctx, fn.name, callbacks)
        for stmt in fn.body:
            visitor.visit(stmt)
        yield from visitor.findings
