"""JSON baseline files: carry known findings without blessing new ones.

A baseline is a snapshot of accepted findings.  ``repro check
--baseline FILE`` subtracts the baselined findings from the current
run, so pre-existing debt does not fail CI while anything *new* still
does.  Matching is on ``(path, rule, message)`` as a multiset —
line numbers are deliberately ignored so unrelated edits that shift
code do not invalidate the baseline.

The shipped tree runs clean, so the checked-in baseline is empty; the
mechanism exists for branches that need to land a finding before its
fix.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.core import Finding
from repro.ioutil import atomic_write_json

__all__ = ["BaselineError", "load_baseline", "write_baseline", "filter_baselined"]

#: Schema version of baseline files.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A baseline file is unreadable or malformed."""


def _key(entry: dict) -> tuple[str, str, str]:
    return (str(entry["path"]), str(entry["rule"]), str(entry["message"]))


def load_baseline(path: str | Path) -> Counter:
    """Multiset of ``(path, rule, message)`` keys from a baseline file."""
    try:
        blob = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BaselineError(f"unreadable baseline file {path}: {exc}") from None
    if not isinstance(blob, dict) or not isinstance(blob.get("findings"), list):
        raise BaselineError(
            f"malformed baseline file {path}: expected "
            '{"version": ..., "findings": [...]}'
        )
    if blob.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"unsupported baseline version {blob.get('version')!r} in {path}"
        )
    accepted: Counter = Counter()
    for entry in blob["findings"]:
        if not isinstance(entry, dict) or not {"path", "rule", "message"} <= set(
            entry
        ):
            raise BaselineError(
                f"malformed baseline entry in {path}: {entry!r}"
            )
        accepted[_key(entry)] += 1
    return accepted


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as a baseline (atomic write, stable order)."""
    atomic_write_json(
        Path(path),
        {
            "version": BASELINE_VERSION,
            "findings": [f.to_json() for f in sorted(findings)],
        },
        indent=1,
        sort_keys=True,
    )


def filter_baselined(
    findings: Iterable[Finding], accepted: Counter
) -> list[Finding]:
    """Findings not covered by the ``accepted`` multiset.

    Each baseline entry absorbs one matching finding; duplicates beyond
    the baselined count still surface.
    """
    remaining = Counter(accepted)
    fresh: list[Finding] = []
    for finding in sorted(findings):
        key = (finding.path, finding.rule, finding.message)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
