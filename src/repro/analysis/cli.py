"""Implementation of the ``repro check`` / ``repro list-rules`` verbs.

Kept separate from :mod:`repro.__main__` so tests drive the verbs as
plain functions; the CLI wires argparse namespaces through to
:func:`run_check` / :func:`run_list_rules` and exits with the returned
code.  ``--format json`` output is a stable artifact contract for CI:

.. code-block:: json

    {"version": 1, "files_scanned": 42, "finding_count": 1,
     "findings": [{"path": "...", "line": 3, "col": 4,
                   "rule": "lock-discipline", "message": "..."}]}
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path
from typing import IO, Sequence

from repro.analysis.baseline import (
    BaselineError,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import Finding, Rule, analyze_paths

__all__ = ["run_check", "run_list_rules", "OUTPUT_VERSION"]

#: Schema version of ``--format json`` output.
OUTPUT_VERSION = 1


def _default_rules() -> list[Rule]:
    from repro.analysis import default_rules

    return default_rules()


def _render_json(findings: list[Finding], scanned: int) -> str:
    return json.dumps(
        {
            "version": OUTPUT_VERSION,
            "files_scanned": scanned,
            "finding_count": len(findings),
            "findings": [f.to_json() for f in findings],
        },
        indent=1,
        sort_keys=True,
    )


def run_check(
    paths: Sequence[str],
    fmt: str = "text",
    baseline: str | None = None,
    update_baseline: str | None = None,
    root: str | Path | None = None,
    rules: Sequence[Rule] | None = None,
    out: IO[str] | None = None,
) -> int:
    """Scan ``paths``; return 0 when clean, 1 on findings, 2 on usage error."""
    out = out if out is not None else sys.stdout
    rules = list(rules) if rules is not None else _default_rules()
    try:
        findings, scanned = analyze_paths(paths, rules, root=root)
    except FileNotFoundError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    if update_baseline is not None:
        write_baseline(update_baseline, findings)
        print(
            f"wrote baseline with {len(findings)} finding(s) to "
            f"{update_baseline}",
            file=out,
        )
        return 0

    if baseline is not None:
        try:
            accepted = load_baseline(baseline)
        except BaselineError as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 2
        findings = filter_baselined(findings, accepted)

    if fmt == "json":
        print(_render_json(findings, scanned), file=out)
    else:
        for finding in findings:
            print(finding.format_text(), file=out)
        noun = "file" if scanned == 1 else "files"
        verdict = (
            "clean"
            if not findings
            else f"{len(findings)} finding(s)"
        )
        print(f"repro check: {scanned} {noun} scanned, {verdict}", file=out)
    return 1 if findings else 0


def run_list_rules(
    verbose: bool = False,
    rules: Sequence[Rule] | None = None,
    out: IO[str] | None = None,
) -> int:
    """Print every registered rule id with its one-line summary."""
    out = out if out is not None else sys.stdout
    rules = list(rules) if rules is not None else _default_rules()
    width = max((len(rule.id) for rule in rules), default=0)
    for rule in rules:
        print(f"{rule.id:<{width}}  {rule.summary}", file=out)
        if verbose and rule.details:
            print(textwrap.indent(rule.details.strip(), "    "), file=out)
            print(file=out)
    return 0
