"""Durability and environment hygiene rules.

``durable-write``
    Every durable artifact (results, model blobs, caches, reports) must
    go through :mod:`repro.ioutil`'s atomic writers — a half-written
    JSON file after a crash is worse than no file.  This rule flags the
    raw primitives: ``open(..., "w"/"a"/"x")``, ``json.dump``,
    ``pickle.dump``, ``Path.write_text`` / ``write_bytes`` and
    ``np.save*`` anywhere outside ``repro/ioutil.py`` itself.
    Non-durable sinks (sys.stdout, a socket) are not reached by these
    primitives in this codebase; a justified direct write takes a
    ``# repro: allow[durable-write]`` pragma.

``env-mutation``
    ROADMAP policy: process environment is read once, in
    ``RunConfig.from_env`` (``repro/api/config.py``), and never
    mutated.  Reads of ``os.environ`` / ``os.getenv`` outside the
    config module and *writes* anywhere (``os.environ[...] = ...``,
    ``.pop``/``.setdefault``/``.update``, ``os.putenv``) are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["DurableWriteRule", "EnvMutationRule"]

#: open() modes that create or mutate a file.
_WRITE_MODE_CHARS = set("wax+")

#: `module.func` dotted calls that write durably.
_DURABLE_DOTTED = {
    ("json", "dump"),
    ("pickle", "dump"),
    ("np", "save"),
    ("np", "savez"),
    ("np", "savez_compressed"),
    ("np", "savetxt"),
    ("numpy", "save"),
    ("numpy", "savez"),
    ("numpy", "savez_compressed"),
    ("numpy", "savetxt"),
}

_DURABLE_METHODS = {"write_text", "write_bytes"}

#: os.environ methods that mutate the environment.
_ENV_MUTATORS = {"pop", "setdefault", "update", "clear", "__setitem__"}


def _receiver_name(func: ast.Attribute) -> str:
    if isinstance(func.value, ast.Name):
        return func.value.id
    if isinstance(func.value, ast.Attribute):
        return func.value.attr
    return ""


def _open_write_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open``/``Path.open`` call if it writes."""
    mode: ast.expr | None = None
    if isinstance(node.func, ast.Name) and node.func.id == "open":
        if len(node.args) >= 2:
            mode = node.args[1]
    elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
        if node.args:
            mode = node.args[0]
    else:
        return None
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and _WRITE_MODE_CHARS & set(mode.value)
    ):
        return mode.value
    return None


class DurableWriteRule(Rule):
    id = "durable-write"
    summary = (
        "durable writes (open('w'), json.dump, write_text, np.save) go "
        "through repro.ioutil's atomic writers"
    )
    details = __doc__ or ""

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.path.stem != "ioutil"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _open_write_mode(node)
            if mode is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"direct open(..., {mode!r}) bypasses repro.ioutil's "
                    "atomic writers",
                )
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = _receiver_name(func)
            if (receiver, func.attr) in _DURABLE_DOTTED:
                yield self.finding(
                    ctx,
                    node,
                    f"'{receiver}.{func.attr}(...)' writes durably outside "
                    "repro.ioutil (use atomic_write_json / atomic_write_npy)",
                )
            elif func.attr in _DURABLE_METHODS:
                yield self.finding(
                    ctx,
                    node,
                    f"'.{func.attr}(...)' writes durably outside repro.ioutil "
                    "(use atomic_write_text / atomic_write_bytes)",
                )


def _is_os_environ(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


class EnvMutationRule(Rule):
    id = "env-mutation"
    summary = (
        "os.environ is read only inside repro/api/config.py "
        "(RunConfig.from_env) and never written"
    )
    details = __doc__ or ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        reads_allowed = ctx.path.stem == "config"
        consumed: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and _is_os_environ(func.value):
                    consumed.add(func.value)
                    if func.attr in _ENV_MUTATORS:
                        yield self.finding(
                            ctx,
                            node,
                            f"'os.environ.{func.attr}(...)' mutates the "
                            "process environment (forbidden everywhere)",
                        )
                    elif not reads_allowed:
                        yield self.finding(
                            ctx,
                            node,
                            f"'os.environ.{func.attr}(...)' reads the "
                            "environment outside RunConfig.from_env",
                        )
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and func.attr in ("putenv", "unsetenv")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"'os.{func.attr}(...)' mutates the process "
                        "environment (forbidden everywhere)",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and func.attr == "getenv"
                    and not reads_allowed
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "'os.getenv(...)' reads the environment outside "
                        "RunConfig.from_env",
                    )
            elif isinstance(node, ast.Subscript) and _is_os_environ(node.value):
                consumed.add(node.value)
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    yield self.finding(
                        ctx,
                        node,
                        "assignment to os.environ[...] mutates the process "
                        "environment (forbidden everywhere)",
                    )
                elif not reads_allowed:
                    yield self.finding(
                        ctx,
                        node,
                        "os.environ[...] read outside RunConfig.from_env",
                    )
        # bare `os.environ` references (e.g. passed as a mapping)
        for node in ast.walk(ctx.tree):
            if _is_os_environ(node) and node not in consumed and not reads_allowed:
                yield self.finding(
                    ctx,
                    node,
                    "'os.environ' referenced outside RunConfig.from_env",
                )
