"""AST lint framework: findings, rules, pragmas, the file walk.

Everything rule-independent lives here.  A :class:`Rule` inspects one
parsed module (:class:`ModuleContext`) and yields :class:`Finding`
objects; :func:`analyze_paths` walks the requested files, runs every
applicable rule and filters findings through the suppression pragmas.

Suppression pragmas
-------------------
A trailing comment ``# repro: allow[rule-id]`` (several ids separated
by commas; anything after the closing bracket is free-form
justification) suppresses matching findings:

* on the physical line carrying the pragma, and
* when that line *starts* a statement, function, class or ``with``
  block, on the whole node's span — so one pragma on a ``return`` line
  covers a multi-line literal, and one on a ``def`` line covers the
  function body.

Pragmas are deliberate, reviewed exemptions; findings nobody has
triaged yet belong in a baseline file (:mod:`repro.analysis.baseline`)
instead.

The framework is pure stdlib (``ast`` + ``tokenize``); it never
imports the modules it checks.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "parse_pragmas",
    "scan_comments",
]

#: ``# repro: allow[rule-id, other-id] optional free-form reason``
_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """One parsed module handed to every rule.

    ``display_path`` is what findings report (relative to the scan root
    when possible); ``parts`` are the path components relative to the
    scan root, which path-scoped rules (determinism: ``graph/`` +
    ``core/``; the module allowlists of the IO rules) match against.
    """

    path: Path
    display_path: str
    parts: tuple[str, ...]
    source: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)

    def comment_on(self, line: int | None) -> str:
        return self.comments.get(line or -1, "")


class Rule:
    """Base class: one invariant checked per module."""

    #: Stable identifier used in output, pragmas and baselines.
    id: str = ""
    #: One-line description for ``repro list-rules``.
    summary: str = ""
    #: Longer convention notes shown by ``repro list-rules --verbose``.
    details: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


def scan_comments(source: str) -> dict[int, str]:
    """``{line: comment_text}`` for every comment token in ``source``.

    Tokenizing (rather than splitting on ``#``) keeps ``#`` inside
    string literals from being mistaken for comments.  A source that
    fails to tokenize (it already failed :func:`ast.parse` then)
    yields whatever was scanned before the error.
    """
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_pragmas(comments: dict[int, str]) -> dict[int, frozenset[str]]:
    """``{line: allowed_rule_ids}`` from ``# repro: allow[...]`` comments."""
    pragmas: dict[int, frozenset[str]] = {}
    for line, text in comments.items():
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        ids = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if ids:
            pragmas[line] = ids
    return pragmas


def _expand_suppressions(
    tree: ast.Module, pragmas: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Extend line pragmas to the span of the node they head.

    A pragma on the first line of any statement (including ``def``,
    ``class`` and ``with`` headers) suppresses through that node's
    ``end_lineno`` — one pragma covers a multi-line construct.
    """
    if not pragmas:
        return {}
    expanded: dict[int, set[str]] = {line: set(ids) for line, ids in pragmas.items()}
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None or lineno not in pragmas:
            continue
        if not isinstance(node, (ast.stmt, ast.expr)):
            continue
        ids = pragmas[lineno]
        for line in range(lineno, end + 1):
            expanded.setdefault(line, set()).update(ids)
    return {line: frozenset(ids) for line, ids in expanded.items()}


def _relative_parts(path: Path, root: Path | None) -> tuple[str, ...]:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).parts
        except ValueError:
            pass
    return resolved.parts


def build_context(path: Path, source: str, root: Path | None = None) -> ModuleContext:
    """Parse ``source`` into a :class:`ModuleContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    parts = _relative_parts(path, root)
    display = "/".join(parts) if root is not None else path.as_posix()
    return ModuleContext(
        path=path,
        display_path=display,
        parts=parts,
        source=source,
        tree=tree,
        comments=scan_comments(source),
    )


def analyze_source(
    path: Path,
    source: str,
    rules: Iterable[Rule],
    root: Path | None = None,
) -> list[Finding]:
    """Run ``rules`` over one module's source, pragma-filtered."""
    try:
        ctx = build_context(path, source, root)
    except SyntaxError as exc:
        display = "/".join(_relative_parts(path, root))
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = _expand_suppressions(ctx.tree, parse_pragmas(ctx.comments))
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule in suppressions.get(finding.line, frozenset()):
                continue
            findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted,
    skipping ``__pycache__``.  A missing path raises ``FileNotFoundError``."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and candidate.suffix == ".py":
                seen.add(resolved)
                yield candidate


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    root: str | Path | None = None,
) -> tuple[list[Finding], int]:
    """``(findings, files_scanned)`` for every Python file under ``paths``.

    ``root`` anchors the display paths (and the path-scoped rules);
    it defaults to the current working directory.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules = list(rules)
    findings: list[Finding] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        source = path.read_text(encoding="utf-8")
        findings.extend(analyze_source(path, source, rules, root_path))
    return sorted(findings), scanned
