"""Lock-discipline race detection for annotated classes.

The serving tier's thread-safety rests on a convention this rule makes
machine-checkable: every piece of shared mutable state is *declared*
guarded by a lock, and every access to it must then happen with that
lock held.

Declaring guards (either form; both may be combined):

* a class-level literal map::

      class ServerState:
          _GUARDED_BY = {"_sessions": "_lock", "_loaded": "_lock"}

* a trailing comment on the attribute's assignment (typically in
  ``__init__``)::

      self._sessions = {}  # guarded-by: _lock

Holding the lock is recognised in two forms:

* lexically, inside a ``with self._lock:`` block;
* by contract, in a method whose ``def`` line carries a trailing
  ``# guarded-by: _lock`` comment — the method documents that callers
  hold the lock.  The rule closes the loop on that contract: *calls*
  to such a method (``self._helper()``) outside a held scope are
  violations too.

``__init__``/``__new__``/``__getstate__``/``__setstate__``/``__del__``
are exempt (the object is not yet, or no longer, shared).  Nested
functions and lambdas are conservatively treated as running *without*
the enclosing locks — they usually escape as callbacks — unless their
own ``def`` line is annotated.  Same-module base classes are resolved,
so subclasses inherit guard declarations.

Deliberately lock-free accesses (stat snapshots, GIL-atomic hot-path
reads) are annotated in place with ``# repro: allow[lock-discipline]``
and a justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["LockDisciplineRule", "GUARD_COMMENT_RE"]

GUARD_COMMENT_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Methods where the instance is not shared between threads yet/anymore.
EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__getstate__", "__setstate__", "__del__"}
)


@dataclass
class _ClassGuards:
    """Guard declarations collected from one class (plus its bases)."""

    guards: dict[str, str] = field(default_factory=dict)
    locked_methods: dict[str, str] = field(default_factory=dict)

    @property
    def lock_names(self) -> frozenset[str]:
        return frozenset(self.guards.values()) | frozenset(
            self.locked_methods.values()
        )

    def merged_under(self, parent: "_ClassGuards") -> "_ClassGuards":
        return _ClassGuards(
            guards={**parent.guards, **self.guards},
            locked_methods={**parent.locked_methods, **self.locked_methods},
        )


def _guard_comment(ctx: ModuleContext, line: int | None) -> str | None:
    match = GUARD_COMMENT_RE.search(ctx.comment_on(line))
    return match.group(1) if match else None


def _literal_guard_map(node: ast.AST) -> dict[str, str] | None:
    """The ``{"attr": "lock"}`` dict of a ``_GUARDED_BY`` assignment."""
    value = getattr(node, "value", None)
    if not isinstance(value, ast.Dict):
        return None
    guards: dict[str, str] = {}
    for key, val in zip(value.keys, value.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(val, ast.Constant)
            and isinstance(val.value, str)
        ):
            guards[key.value] = val.value
    return guards


def _is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _collect_class_guards(ctx: ModuleContext, cls: ast.ClassDef) -> _ClassGuards:
    collected = _ClassGuards()
    for stmt in cls.body:
        # class-level `_GUARDED_BY = {...}` (plain or annotated assignment)
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                literal = _literal_guard_map(stmt)
                if literal is not None:
                    collected.guards.update(literal)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lock = _guard_comment(ctx, stmt.lineno)
            if lock is not None:
                collected.locked_methods[stmt.name] = lock
    # `self.attr = ...  # guarded-by: _lock` anywhere inside the class
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            lock = _guard_comment(ctx, getattr(node, "end_lineno", node.lineno))
            if lock is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if _is_self_attr(target):
                    collected.guards[target.attr] = lock  # type: ignore[union-attr]
    return collected


def _resolve_inheritance(
    classes: dict[str, tuple[ast.ClassDef, _ClassGuards]],
) -> dict[str, _ClassGuards]:
    """Merge guard maps down same-module inheritance chains."""
    resolved: dict[str, _ClassGuards] = {}

    def resolve(name: str, trail: frozenset[str]) -> _ClassGuards:
        if name in resolved:
            return resolved[name]
        cls, own = classes[name]
        merged = own
        for base in cls.bases:
            if (
                isinstance(base, ast.Name)
                and base.id in classes
                and base.id not in trail
            ):
                merged = merged.merged_under(resolve(base.id, trail | {name}))
        resolved[name] = merged
        return merged

    for name in classes:
        resolve(name, frozenset({name}))
    return resolved


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking which declared locks are held."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        ctx: ModuleContext,
        guards: _ClassGuards,
        method: str,
        held: frozenset[str],
    ):
        self.rule = rule
        self.ctx = ctx
        self.guards = guards
        self.method = method
        self.held = held
        self.findings: list[Finding] = []
        self._reported: set[tuple[int, str]] = set()

    # -- lock scopes -------------------------------------------------------
    def _with_locks(self, node: ast.With | ast.AsyncWith) -> frozenset[str]:
        acquired = set()
        for item in node.items:
            expr = item.context_expr
            if _is_self_attr(expr) and expr.attr in self.guards.lock_names:  # type: ignore[union-attr]
                acquired.add(expr.attr)  # type: ignore[union-attr]
        return frozenset(acquired)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            self.visit(item.context_expr)
        saved = self.held
        self.held = self.held | self._with_locks(node)
        for stmt in node.body:
            self.visit(stmt)
        self.held = saved

    # -- nested scopes run without the enclosing locks ---------------------
    def _visit_nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        lock = _guard_comment(self.ctx, node.lineno)
        saved = self.held
        self.held = frozenset({lock}) if lock is not None else frozenset()
        for stmt in node.body:
            self.visit(stmt)
        self.held = saved

    visit_FunctionDef = _visit_nested  # type: ignore[assignment]
    visit_AsyncFunctionDef = _visit_nested  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved = self.held
        self.held = frozenset()
        self.visit(node.body)
        self.held = saved

    # -- accesses ----------------------------------------------------------
    def _report(self, node: ast.AST, key: str, message: str) -> None:
        mark = (getattr(node, "lineno", 0), key)
        if mark in self._reported:
            return
        self._reported.add(mark)
        self.findings.append(self.rule.finding(self.ctx, node, message))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_self_attr(node):
            lock = self.guards.guards.get(node.attr)
            if lock is not None and lock not in self.held:
                self._report(
                    node,
                    node.attr,
                    f"'self.{node.attr}' is guarded by 'self.{lock}' but "
                    f"accessed in '{self.method}' without holding it",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if _is_self_attr(func):
            lock = self.guards.locked_methods.get(func.attr)  # type: ignore[union-attr]
            if lock is not None and lock not in self.held:
                self._report(
                    node,
                    f"call:{func.attr}",  # type: ignore[union-attr]
                    f"'self.{func.attr}()' requires 'self.{lock}' held "
                    f"(guarded-by annotation) but '{self.method}' calls it "
                    "without the lock",
                )
        self.generic_visit(node)


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    summary = (
        "attributes declared guarded (class _GUARDED_BY map or trailing "
        "'# guarded-by: _lock' comments) are only touched with the lock held"
    )
    details = __doc__ or ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        classes: dict[str, tuple[ast.ClassDef, _ClassGuards]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = (node, _collect_class_guards(ctx, node))
        resolved = _resolve_inheritance(classes)
        for name, (cls, _) in classes.items():
            guards = resolved[name]
            if not guards.guards and not guards.locked_methods:
                continue
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in EXEMPT_METHODS:
                    continue
                lock = guards.locked_methods.get(stmt.name)
                held = frozenset({lock}) if lock is not None else frozenset()
                visitor = _MethodVisitor(self, ctx, guards, stmt.name, held)
                for sub in stmt.body:
                    visitor.visit(sub)
                yield from visitor.findings
