"""Project-invariant static analysis (``repro check``).

A stdlib-``ast`` lint framework plus six checkers for the invariants
this codebase's correctness actually rests on.  Pure stdlib — it parses
source, it never imports the code under analysis — so it runs in any
environment, including before heavyweight dependencies are installed.

Rules
-----
``lock-discipline``
    Shared mutable state is *declared* guarded and only touched with
    the lock held.  Two declaration forms, used across
    ``repro/serve`` and ``repro/core/batch.py``:

    * class-level map: ``_GUARDED_BY = {"_sessions": "_lock"}``
    * trailing comment on the assignment: ``self._ring = []  # guarded-by: _lock``

    A ``# guarded-by: _lock`` comment on a ``def`` line declares the
    *method* lock-held: its body is checked as if the lock were taken,
    and calls to it from outside a ``with self._lock:`` scope are
    flagged.  ``__init__``/``__new__``/``__getstate__``/
    ``__setstate__``/``__del__`` are exempt; nested functions are
    assumed to escape the lock scope.

``async-blocking``
    No blocking primitives (``time.sleep``, ``lock.acquire()``,
    ``queue.get()``, file/socket I/O, ``Future.result()``) inside
    coroutines, loop callbacks or ``asyncio.Protocol`` methods.

``durable-write``
    Durable writes go through :mod:`repro.ioutil`'s atomic writers,
    never raw ``open(..., "w")`` / ``json.dump`` / ``write_text``.

``env-mutation``
    ``os.environ`` is read only in ``repro/api/config.py``
    (``RunConfig.from_env``) and mutated nowhere.

``determinism``
    Feature code under ``graph/``/``core/`` never iterates raw sets or
    calls unseeded ``random``/``np.random`` module-level RNGs — the
    streaming==batch bit-identical feature guarantee depends on it.

``ledger-access``
    The run ledger (``ledger.db``) is touched only through
    :mod:`repro.ledger` — direct ``sqlite3.connect`` elsewhere bypasses
    its WAL/timeout/migration contract.

Suppressions
------------
A trailing ``# repro: allow[rule-id] reason`` pragma exempts its line
(and, on a statement/def header, the whole node span).  Untriaged debt
goes in a JSON baseline (``repro check --baseline FILE``) instead; the
shipped tree runs clean with an empty baseline.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BaselineError,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import OUTPUT_VERSION, run_check, run_list_rules
from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.rules_async import AsyncBlockingRule
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_io import DurableWriteRule, EnvMutationRule
from repro.analysis.rules_ledger import LedgerAccessRule
from repro.analysis.rules_locks import LockDisciplineRule

__all__ = [
    "AsyncBlockingRule",
    "BaselineError",
    "DeterminismRule",
    "DurableWriteRule",
    "EnvMutationRule",
    "Finding",
    "LedgerAccessRule",
    "LockDisciplineRule",
    "ModuleContext",
    "OUTPUT_VERSION",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "filter_baselined",
    "iter_python_files",
    "load_baseline",
    "run_check",
    "run_list_rules",
    "write_baseline",
]


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in stable id order."""
    rules = [
        AsyncBlockingRule(),
        DeterminismRule(),
        DurableWriteRule(),
        EnvMutationRule(),
        LedgerAccessRule(),
        LockDisciplineRule(),
    ]
    return sorted(rules, key=lambda rule: rule.id)
