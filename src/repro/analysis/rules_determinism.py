"""Determinism rule for feature-producing code (``graph/``, ``core/``).

The streaming tier is property-pinned on *bit-identical* features:
``classify_stream`` must equal ``classify_batch`` for the same window.
Two classes of nondeterminism can silently break that guarantee:

* **unordered set iteration** — ``for v in {a, b, c}`` /
  ``for v in set(x)`` orders by hash, which for strings varies per
  process (hash randomisation).  A feature vector assembled from such
  a loop is not reproducible.  Dicts preserve insertion order in
  Python ≥ 3.7 and are not flagged; sets (literals, ``set()`` /
  ``frozenset()`` calls, set-operator results, and calls of the
  set-returning methods ``intersection`` / ``union`` / ``difference``
  / ``symmetric_difference``) are.
* **unseeded global RNGs** — ``random.random()`` / ``np.random.rand()``
  draw from interpreter-global state.  Policy is explicit generators:
  ``np.random.default_rng(seed)`` / ``random.Random(seed)`` threaded
  through call signatures.  Any ``random.*`` / ``np.random.*`` module-
  level call (other than constructing such a generator) is flagged —
  including ``seed()`` itself, which mutates shared global state.

Scoped to modules under a ``graph/`` or ``core/`` directory: that is
where feature vectors are computed.  Sorting the set first
(``for v in sorted(s)``) is the fix; a truly order-independent use
(e.g. summing) takes ``# repro: allow[determinism]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["DeterminismRule"]

#: Constructors of explicitly-seeded generators — allowed.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "RandomState",
}

#: Directories whose modules compute features.
_SCOPED_DIRS = {"graph", "core"}

#: Set-returning method names: ``x.intersection(y)`` yields a set for
#: every builtin receiver that has the method, so iterating the call
#: result is unordered regardless of what ``x`` is.  Added when the
#: delta-maintained metric states (``graph/incremental_metrics.py``)
#: brought common-neighbourhood set algebra onto the feature path.
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}


def _is_set_expr(node: ast.expr) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _SET_METHODS
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set operators only when one operand is itself visibly a set
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class DeterminismRule(Rule):
    id = "determinism"
    summary = (
        "feature code (graph/, core/) never iterates raw sets or calls "
        "unseeded random/np.random module-level RNGs"
    )
    details = __doc__ or ""

    def applies(self, ctx: ModuleContext) -> bool:
        return bool(_SCOPED_DIRS & set(ctx.parts[:-1]))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "iteration over an unordered set: order varies with "
                        "hash randomisation (sort it first)",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension over an unordered set: order varies "
                            "with hash randomisation (sort it first)",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                func = node.func
                # `random.<fn>(...)` on the stdlib module
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr != "Random"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"'random.{func.attr}(...)' uses the unseeded global "
                        "RNG (thread an explicit random.Random(seed))",
                    )
                # `np.random.<fn>(...)` / `numpy.random.<fn>(...)`
                elif (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")
                    and func.attr not in _SEEDED_CONSTRUCTORS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"'np.random.{func.attr}(...)' uses the unseeded "
                        "global RNG (use np.random.default_rng(seed))",
                    )
