"""Ledger encapsulation rule.

``ledger-access``
    The run ledger (``ledger.db``) has exactly one owner:
    :mod:`repro.ledger`.  Its connection handling encodes the
    invariants everything else relies on — WAL journaling, busy
    timeouts, schema migrations, the warn-and-degrade write contract —
    and a stray ``sqlite3.connect`` elsewhere silently opts out of all
    of them (a rollback-journal connection can even deadlock against
    the WAL writers).  This rule flags ``sqlite3.connect(...)`` calls
    and ``from sqlite3 import ...`` anywhere outside ``repro/ledger/``;
    a justified direct connection takes a
    ``# repro: allow[ledger-access]`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["LedgerAccessRule"]


class LedgerAccessRule(Rule):
    id = "ledger-access"
    summary = (
        "sqlite3 connections are owned by repro.ledger — no direct "
        "sqlite3.connect outside repro/ledger/"
    )
    details = __doc__ or ""

    def applies(self, ctx: ModuleContext) -> bool:
        return "ledger" not in ctx.path.parts

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "sqlite3":
                names = ", ".join(alias.name for alias in node.names)
                yield self.finding(
                    ctx,
                    node,
                    f"'from sqlite3 import {names}' outside repro/ledger/ "
                    "(go through repro.ledger.Ledger)",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "connect"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "sqlite3"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "'sqlite3.connect(...)' outside repro/ledger/ bypasses "
                        "the ledger's WAL/timeout/migration contract "
                        "(go through repro.ledger.Ledger)",
                    )
