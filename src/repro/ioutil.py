"""Atomic file-write helpers shared across the caches, persistence and
the model store.

Every durable artifact this library writes — feature-cache vectors,
sweep result caches, persisted models, model-store blobs and manifests —
goes through these helpers: the payload lands in a temp file in the
destination directory and is published with ``os.replace``, so a killed
worker, a full disk or two concurrent server threads can never leave a
truncated file that a later reader mistakes for real data.  Readers
still defend against files written by older code or other tools, but
within this codebase a partially written artifact is impossible.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Write ``payload`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    return atomic_write_bytes(path, text.encode())


def atomic_write_json(path: str | Path, payload: Any, **dump_kwargs: Any) -> Path:
    """Serialise ``payload`` as JSON and write it atomically.

    The JSON is rendered to a string first, so a serialisation error
    never leaves a half-written file either.
    """
    return atomic_write_text(path, json.dumps(payload, **dump_kwargs))


def atomic_write_npy(path: str | Path, array: np.ndarray) -> Path:
    """Persist one array atomically in ``.npy`` format."""
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return atomic_write_bytes(path, buffer.getvalue())
