"""Dynamic Time Warping with a Sakoe–Chiba band and lower bounds.

The DP recurrence runs row-by-row with numpy inner vectorisation; the
1NN search combines the LB_Kim and LB_Keogh lower bounds with early
ordering, the standard pruning pipeline (Rakthanmanon et al., 2012).
Distances are on squared pointwise costs with a final square root.
"""

from __future__ import annotations

import numpy as np


def _resolve_window(n: int, m: int, window: int | float | None) -> int:
    if window is None:
        return max(n, m)
    if isinstance(window, float):
        if not 0.0 <= window <= 1.0:
            raise ValueError("fractional window must be within [0, 1]")
        window = int(np.ceil(window * max(n, m)))
    if window < 0:
        raise ValueError("window must be non-negative")
    # The band must at least cover the length difference for a path to exist.
    return max(int(window), abs(n - m))


def dtw_distance(
    a: np.ndarray, b: np.ndarray, window: int | float | None = None
) -> float:
    """DTW distance between two series.

    ``window`` is a Sakoe–Chiba band half-width: ``None`` (unconstrained),
    an absolute integer, or a float fraction of the longer series.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ValueError("inputs must be non-empty 1-dimensional arrays")
    n, m = a.size, b.size
    w = _resolve_window(n, m, window)

    previous = np.full(m + 1, np.inf)
    previous[0] = 0.0
    current = np.empty(m + 1)
    for i in range(1, n + 1):
        current[:] = np.inf
        lo = max(1, i - w)
        hi = min(m, i + w)
        cost = (a[i - 1] - b[lo - 1 : hi]) ** 2
        # current[j] = cost + min(prev[j-1], prev[j], current[j-1]); the
        # current[j-1] term is sequential, so resolve it in a tight loop
        # over the (usually narrow) band.
        best_prev = np.minimum(previous[lo - 1 : hi], previous[lo : hi + 1])
        running = np.inf
        for offset in range(hi - lo + 1):
            running = cost[offset] + min(best_prev[offset], running)
            current[lo + offset] = running
        previous, current = current, previous
    return float(np.sqrt(previous[m]))


def lb_kim(a: np.ndarray, b: np.ndarray) -> float:
    """LB_Kim (simplified): distance on first/last points lower-bounds DTW."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.sqrt((a[0] - b[0]) ** 2 + (a[-1] - b[-1]) ** 2))


def _envelope(series: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Running min/max envelope of half-width ``window``."""
    n = series.size
    lower = np.empty(n)
    upper = np.empty(n)
    for i in range(n):
        lo = max(0, i - window)
        hi = min(n, i + window + 1)
        segment = series[lo:hi]
        lower[i] = segment.min()
        upper[i] = segment.max()
    return lower, upper


def lb_keogh(query: np.ndarray, candidate: np.ndarray, window: int | float | None) -> float:
    """LB_Keogh lower bound of ``dtw_distance(query, candidate, window)``.

    Both series must have equal length (the UCR setting).
    """
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.shape != candidate.shape:
        raise ValueError("LB_Keogh requires equal-length series")
    w = _resolve_window(query.size, candidate.size, window)
    lower, upper = _envelope(candidate, w)
    above = np.maximum(query - upper, 0.0)
    below = np.maximum(lower - query, 0.0)
    return float(np.sqrt(np.sum(above**2 + below**2)))


def nearest_neighbor_dtw(
    query: np.ndarray,
    references: np.ndarray,
    window: int | float | None = None,
) -> tuple[int, float]:
    """Index and distance of the DTW-nearest reference to ``query``.

    Uses LB_Kim then LB_Keogh to skip full DTW computations whenever the
    bound already exceeds the best distance found so far.
    """
    query = np.asarray(query, dtype=np.float64)
    references = np.asarray(references, dtype=np.float64)
    best_idx = -1
    best = np.inf
    for idx in range(references.shape[0]):
        candidate = references[idx]
        if lb_kim(query, candidate) >= best:
            continue
        if query.shape == candidate.shape and lb_keogh(query, candidate, window) >= best:
            continue
        distance = dtw_distance(query, candidate, window)
        if distance < best:
            best = distance
            best_idx = idx
    return best_idx, float(best)
