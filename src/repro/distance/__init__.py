"""Time-series distance measures (Euclidean, DTW) and lower bounds."""

from repro.distance.dtw import dtw_distance, lb_keogh, lb_kim, nearest_neighbor_dtw
from repro.distance.euclidean import euclidean_distance, squared_euclidean_distance

__all__ = [
    "euclidean_distance",
    "squared_euclidean_distance",
    "dtw_distance",
    "lb_keogh",
    "lb_kim",
    "nearest_neighbor_dtw",
]
