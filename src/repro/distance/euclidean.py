"""Euclidean distance between equal-length series."""

from __future__ import annotations

import numpy as np


def squared_euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Sum of squared pointwise differences."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    diff = a - b
    return float(diff @ diff)


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean (L2) distance."""
    return float(np.sqrt(squared_euclidean_distance(a, b)))
