"""Command-line entry point: ``python -m repro <command>``.

Commands map 1:1 onto the paper's artifacts:

=============  ==================================================
table2         heuristic validation (Table 2 + Wilcoxon footer)
table3         benchmark vs the five baselines (Table 3)
fig2..fig5     motif boxplots / heuristic scatter panels
fig6 fig7      critical-difference diagrams
fig8 fig9      MVG-vs-baseline scatter / runtime comparison
fig10          FordA feature-importance case study
datasets       list the surrogate archive with metadata
all            run every artifact in order
=============  ==================================================

Global flags: ``--force`` ignores JSON caches; ``--jobs N`` fans the
per-series feature extraction of every sweep over ``N`` worker
processes (it sets the ``REPRO_JOBS`` env knob consumed by
:class:`repro.core.batch.BatchFeatureExtractor`).  Restrict datasets
with the ``REPRO_DATASETS`` / ``REPRO_MAX_DATASETS`` environment
variables.  Extracted feature vectors are cached per series under
``REPRO_RESULTS_DIR/feature_cache``, so re-runs (and artifacts sharing
datasets, e.g. table2 and the figure sweeps) skip re-extraction.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.data.archive import ARCHIVE_METADATA


def _print_datasets() -> None:
    from repro.experiments.reporting import format_table

    rows = [
        [
            spec.name,
            spec.n_classes,
            f"{spec.paper_train}->{spec.train_size}",
            f"{spec.paper_test}->{spec.test_size}",
            f"{spec.paper_length}->{spec.length}",
            spec.archetype,
            "yes" if spec.swapped_in_table3 else "",
        ]
        for spec in ARCHIVE_METADATA.values()
    ]
    print(
        format_table(
            ["Dataset", "k", "train", "test", "length", "archetype", "swapped(T3)"],
            rows,
            title="Surrogate archive (paper size -> scaled size)",
        )
    )


def _dispatch(command: str, force: bool) -> None:
    if command == "datasets":
        _print_datasets()
        return
    if command == "table2":
        from repro.experiments.table2 import render_table2, run_table2

        print(render_table2(run_table2(force=force)))
        return
    if command == "table3":
        from repro.experiments.table3 import render_table3, run_table3

        print(render_table3(run_table3(force=force)))
        return
    if command in ("fig2", "fig3", "fig4", "fig5", "fig8", "fig9"):
        from repro.experiments.figures import render

        print(render(command, force=force))
        return
    if command in ("fig6", "fig7"):
        from repro.experiments.cd_diagrams import (
            FIG6_METHODS,
            FIG7_METHODS,
            render_cd,
            run_fig6,
            run_fig7,
        )

        if command == "fig6":
            print(render_cd(run_fig6(force=force), FIG6_METHODS, "Figure 6"))
        else:
            print(render_cd(run_fig7(force=force), FIG7_METHODS, "Figure 7"))
        return
    if command == "fig10":
        from repro.experiments.case_study import render_case_study, run_case_study

        print(render_case_study(run_case_study()))
        return
    raise ValueError(f"unknown command {command!r}")


ALL_COMMANDS = (
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=ALL_COMMANDS + ("datasets", "all"),
        help="artifact to regenerate",
    )
    parser.add_argument(
        "--force", action="store_true", help="ignore cached sweep results"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for feature extraction (sets REPRO_JOBS)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        if args.jobs <= 0:
            parser.error(f"--jobs must be a positive integer, got {args.jobs}")
        os.environ["REPRO_JOBS"] = str(args.jobs)
    commands = ALL_COMMANDS if args.command == "all" else (args.command,)
    for command in commands:
        _dispatch(command, args.force)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
