"""Command-line entry point: ``python -m repro <command>``.

Artifact commands map 1:1 onto the paper's tables and figures; the
estimator verbs drive the component registry (:mod:`repro.registry`):

=============  ==================================================
table2         heuristic validation (Table 2 + Wilcoxon footer)
table3         benchmark vs the five baselines (Table 3)
fig2..fig5     motif boxplots / heuristic scatter panels
fig6 fig7      critical-difference diagrams
fig8 fig9      MVG-vs-baseline scatter / runtime comparison
fig10          FordA feature-importance case study
all            run every artifact in order
datasets       list the surrogate archive with metadata
list-models    list every registered component by name
run            fit+evaluate any registered model on one dataset
fit            fit a model and save it (JSON file or model store)
predict        load a saved model and evaluate it on a split
serve          HTTP inference server over a model store
pipeline       serve + closed-loop drift detection and retraining
stream         sliding-window streaming classification (local/remote)
models         list / delete model-store entries
db             query / stats / gc over the experiment ledger
=============  ==================================================

Examples::

    python -m repro run --model mvg:G --dataset BeetleFly
    python -m repro fit --model mvg:A --dataset Wine --out wine.json
    python -m repro predict --model-file wine.json --dataset Wine
    python -m repro fit --model mvg:A --dataset Wine --store models/ --name wine
    python -m repro serve --store models/ --port 8765
    python -m repro pipeline --store models/ --port 8765 --min-windows 48
    python -m repro stream --store models/ --window 128 --dataset Wine
    python -m repro stream --url http://127.0.0.1:8765 --window 128 < points.txt
    python -m repro models --store models/
    python -m repro db query --dataset BeetleFly --order-by error
    python -m repro db stats --store models/
    python -m repro db gc --store models/           # dry run
    python -m repro table2 --jobs 4 --datasets BeetleFly,BirdChicken

Every command accepts declarative run flags (``--jobs``, ``--datasets``,
``--max-datasets``, ``--results-dir``, ``--full-grid``, ``--seed``,
``--force``) which build a :class:`repro.api.RunConfig` threaded
explicitly through the sweeps — nothing mutates ``os.environ``.  The
legacy ``REPRO_*`` environment variables still work as a deprecated
read-only fallback for flags you do not pass.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.api.config import RunConfig

#: The paper artifacts, in the order ``all`` regenerates them.
ALL_COMMANDS = (
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
)


def _add_run_options(
    parser: argparse.ArgumentParser, sweep: bool = True, tuning: bool = True
) -> None:
    """Declarative RunConfig flags.

    ``sweep=False`` (the single-dataset verbs ``run``/``fit``/
    ``predict``) omits the flags that only steer sweeps — ``--force``,
    ``--datasets`` and ``--max-datasets`` — and ``tuning=False``
    (``predict``, which never fits) additionally omits ``--full-grid``
    and ``--seed``, so no accepted flag is ever silently ignored.
    """
    group = parser.add_argument_group("run configuration")
    if sweep:
        group.add_argument(
            "--force", action="store_true", help="ignore cached sweep results"
        )
        group.add_argument(
            "--datasets",
            default=None,
            metavar="A,B,...",
            help="comma-separated archive dataset names to restrict sweeps to",
        )
        group.add_argument(
            "--max-datasets",
            type=int,
            default=None,
            metavar="N",
            help="keep only the first N selected datasets",
        )
    group.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for feature extraction",
    )
    group.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="directory for JSON result caches and the feature cache",
    )
    if tuning:
        group.add_argument(
            "--full-grid",
            action="store_true",
            help="use the paper's full XGBoost hyper-parameter grid",
        )
        group.add_argument(
            "--seed",
            type=int,
            default=None,
            metavar="N",
            help="random seed (default 0)",
        )


def build_run_config(args: argparse.Namespace) -> RunConfig:
    """A :class:`RunConfig` from parsed CLI flags.

    Starts from the deprecated ``REPRO_*`` env shim (so partially
    migrated setups keep working, with a warning) and overrides it with
    every flag the user actually passed.
    """
    try:
        config = RunConfig.from_env()
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    changes: dict[str, object] = {}
    if getattr(args, "force", False):
        changes["force"] = True
    if args.jobs is not None:
        changes["jobs"] = args.jobs
    datasets = getattr(args, "datasets", None)
    if datasets is not None:
        try:
            changes["datasets"] = RunConfig.parse_dataset_list(datasets, "--datasets")
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        changes["source"] = "explicit"
    if getattr(args, "max_datasets", None) is not None:
        changes["max_datasets"] = args.max_datasets
    if args.results_dir is not None:
        changes["results_dir"] = args.results_dir
    if getattr(args, "full_grid", False):
        changes["full_grid"] = True
    if getattr(args, "seed", None) is not None:
        changes["seed"] = args.seed
    try:
        return config.replace(**changes)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


# -- artifact commands ---------------------------------------------------------


def _print_datasets() -> None:
    from repro.data.archive import ARCHIVE_METADATA
    from repro.experiments.reporting import format_table

    rows = [
        [
            spec.name,
            spec.n_classes,
            f"{spec.paper_train}->{spec.train_size}",
            f"{spec.paper_test}->{spec.test_size}",
            f"{spec.paper_length}->{spec.length}",
            spec.archetype,
            "yes" if spec.swapped_in_table3 else "",
        ]
        for spec in ARCHIVE_METADATA.values()
    ]
    print(
        format_table(
            ["Dataset", "k", "train", "test", "length", "archetype", "swapped(T3)"],
            rows,
            title="Surrogate archive (paper size -> scaled size)",
        )
    )


def _dispatch(command: str, config: RunConfig) -> None:
    """Regenerate one paper artifact under the given run config."""
    if command == "datasets":
        _print_datasets()
        return
    if command == "table2":
        from repro.experiments.table2 import render_table2, run_table2

        print(render_table2(run_table2(config=config)))
        return
    if command == "table3":
        from repro.experiments.table3 import render_table3, run_table3

        print(render_table3(run_table3(config=config)))
        return
    if command in ("fig2", "fig3", "fig4", "fig5", "fig8", "fig9"):
        from repro.experiments.figures import render

        print(render(command, config=config))
        return
    if command in ("fig6", "fig7"):
        from repro.experiments.cd_diagrams import (
            FIG6_METHODS,
            FIG7_METHODS,
            render_cd,
            run_fig6,
            run_fig7,
        )

        if command == "fig6":
            print(render_cd(run_fig6(config=config), FIG6_METHODS, "Figure 6"))
        else:
            print(render_cd(run_fig7(config=config), FIG7_METHODS, "Figure 7"))
        return
    if command == "fig10":
        from repro.experiments.case_study import render_case_study, run_case_study

        print(render_case_study(run_case_study(config=config)))
        return
    raise ValueError(f"unknown command {command!r}")


# -- estimator verbs -----------------------------------------------------------


def _configure_model(model, split, config: RunConfig, tune: bool):
    """Wire run-config knobs (seed, jobs, grid) into a registry model.

    Only parameters the model actually declares are set, so the same
    code path serves MVG pipelines and every baseline.
    """
    from repro.experiments.harness import active_param_grid

    if not hasattr(model, "_param_names"):
        return model
    params = set(model._param_names())
    updates: dict[str, object] = {}
    if "random_state" in params:
        updates["random_state"] = config.seed
    if "n_jobs" in params:
        updates["n_jobs"] = config.jobs
    if "feature_cache" in params:
        updates["feature_cache"] = config.feature_cache
    if "cache_dir" in params:
        updates["cache_dir"] = str(config.feature_cache_dir())
    if tune and "param_grid" in params:
        updates["param_grid"] = active_param_grid(split.train.n_classes, config)
    if updates:
        model.set_params(**updates)
    return model


def _cmd_list_models(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.registry import available

    entries = available(kind=args.kind)
    rows = [
        [
            entry.name,
            entry.kind,
            ",".join(entry.variants) if entry.variants else "",
            entry.description,
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["Name", "Kind", "Variants", "Description"],
            rows,
            title="Registered components (make with `python -m repro run --model NAME`)",
        )
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import run_check

    paths = args.paths or ["src/repro"]
    return run_check(
        paths,
        fmt=args.format,
        baseline=args.baseline,
        update_baseline=args.write_baseline,
        root=args.root,
    )


def _cmd_list_rules(args: argparse.Namespace) -> int:
    from repro.analysis import run_list_rules

    return run_list_rules(verbose=args.verbose)


def _load_split(name: str, orientation: str):
    from repro.data.archive import load_archive_dataset

    try:
        return load_archive_dataset(name, orientation=orientation)
    except KeyError as exc:
        # KeyError str() wraps the message in quotes; unwrap it.
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None


def _make_model(spec: str):
    from repro.registry import REGISTRY

    try:
        entry = REGISTRY.entry(spec)
        if entry.kind != "classifier":
            raise SystemExit(
                f"--model must name a classifier; {entry.name!r} is a "
                f"{entry.kind} (see `python -m repro list-models --kind classifier`)"
            )
        if entry.consumes == "features":
            raise SystemExit(
                f"{entry.name!r} operates on already-extracted features, not raw "
                "series; compose it behind an extractor instead, e.g. "
                f"repro.api.build_pipeline('znorm', 'batch-features:G', {entry.name!r})"
            )
        return REGISTRY.make(spec)
    except (KeyError, ValueError) as exc:
        # KeyError str() wraps the message in quotes; unwrap it.
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(message) from None


def _run_settings(args: argparse.Namespace, config: RunConfig, dataset: str) -> dict:
    """The identifying settings of one ``run``/``fit`` invocation — the
    input of its ledger config hash."""
    return {
        "model": args.model,
        "dataset": dataset,
        "orientation": args.orientation,
        "seed": config.seed,
        "full_grid": config.full_grid,
        "tuned": not args.no_tune,
    }


def _record_cli_run(
    kind: str,
    config: RunConfig,
    settings: dict,
    **row: object,
) -> None:
    """Append one ``run``/``fit`` row to the results-directory ledger.

    Best-effort by design: a missing or broken ledger warns and the verb
    still succeeds — provenance must never fail the run it describes.
    """
    from repro.experiments.harness import results_dir
    from repro.ledger import Ledger, config_fingerprint

    ledger = Ledger.attach(results_dir(config) / "ledger.db")
    if ledger is None:
        return
    try:
        row_id = ledger.record(
            kind,
            label=str(settings["model"]),
            model=str(settings["model"]),
            dataset=str(settings["dataset"]),
            seed=config.seed,
            config_hash=config_fingerprint(settings),
            config=settings,
            **row,
        )
    finally:
        ledger.close()
    if row_id is not None:
        print(f"ledger:   run #{row_id} recorded in {ledger.path}")


def _cmd_run(args: argparse.Namespace) -> int:
    """Fit a registry model on a dataset's train split, report test error."""
    from repro.ml.metrics import error_rate

    config = build_run_config(args)
    split = _load_split(args.dataset, args.orientation)
    model = _configure_model(_make_model(args.model), split, config, tune=not args.no_tune)

    t0 = time.perf_counter()
    model.fit(split.train.X, split.train.y)
    fit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    predictions = model.predict(split.test.X)
    predict_seconds = time.perf_counter() - t0
    error = error_rate(split.test.y, predictions)

    print(f"model:    {args.model}")
    print(f"dataset:  {split.name} ({args.orientation} orientation)")
    print(
        f"          train {split.train.n_samples} x {split.train.length}, "
        f"test {split.test.n_samples}, {split.train.n_classes} classes"
    )
    print(f"error:    {error:.6g}  (accuracy {1.0 - error:.6g})")
    print(f"runtime:  fit {fit_seconds:.2f}s, predict {predict_seconds:.2f}s")
    _record_cli_run(
        "run",
        config,
        _run_settings(args, config, split.name),
        error=float(error),
        metrics={
            "fit_seconds": round(fit_seconds, 6),
            "predict_seconds": round(predict_seconds, 6),
        },
        wall_seconds=fit_seconds + predict_seconds,
    )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    """Fit a registry model and persist it (JSON file and/or model store)."""
    from repro.ml.metrics import error_rate
    from repro.ml.persistence import save_model

    if not args.out and not args.store:
        raise SystemExit("fit needs a destination: --out PATH and/or --store DIR --name NAME")
    if args.store and not args.name:
        raise SystemExit("--store needs --name to label the stored model")
    if args.name and not args.store:
        raise SystemExit("--name only makes sense together with --store")
    if args.name:
        # Validate before the (possibly minutes-long) fit, not after.
        from repro.serve.store import validate_model_name

        try:
            validate_model_name(args.name)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    config = build_run_config(args)
    split = _load_split(args.dataset, args.orientation)
    model = _configure_model(_make_model(args.model), split, config, tune=not args.no_tune)
    t0 = time.perf_counter()
    model.fit(split.train.X, split.train.y)
    fit_seconds = time.perf_counter() - t0
    train_error = error_rate(split.train.y, model.predict(split.train.X))
    print(f"fitted {args.model} on {split.name} (train error {train_error:.6g})")
    settings = _run_settings(args, config, split.name)
    record = None
    artifact = None
    try:
        if args.out:
            artifact = str(save_model(model, args.out))
            print(f"saved to {artifact}")
        if args.store:
            from repro.ledger import config_fingerprint
            from repro.serve import ModelStore

            # The stored metadata carries the full provenance triple
            # (dataset, seed, config hash) so the store ledger's publish
            # row can answer "where did this version come from".
            record = ModelStore(args.store).save(
                model,
                args.name,
                metadata={
                    "spec": args.model,
                    "dataset": split.name,
                    "orientation": args.orientation,
                    "train_error": round(train_error, 6),
                    "seed": config.seed,
                    "config_hash": config_fingerprint(settings),
                },
            )
            artifact = str(Path(args.store) / "blobs" / record.name / f"v{record.version}.json")
            print(
                f"stored as {record.name} v{record.version} in {args.store} "
                f"(sha256 {record.sha256[:12]}…)"
            )
    except (TypeError, ValueError) as exc:
        raise SystemExit(
            f"{exc}; persistable models include mvg:* and xgboost/rf/tree/logreg "
            "pipelines (see repro.ml.persistence)"
        ) from None
    _record_cli_run(
        "fit",
        config,
        settings,
        error=float(train_error),
        metrics={"train_error": round(train_error, 6), "fit_seconds": round(fit_seconds, 6)},
        artifact=artifact,
        wall_seconds=fit_seconds,
        meta=(
            {"store": str(args.store), "name": record.name, "version": record.version}
            if record is not None
            else None
        ),
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Load a saved model and evaluate it on a dataset split."""
    from repro.ml.metrics import error_rate
    from repro.ml.persistence import load_model

    config = build_run_config(args)
    split = _load_split(args.dataset, args.orientation)
    try:
        model = load_model(args.model_file)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"cannot load model from {args.model_file}: {exc}") from None
    # Re-wire machine-local extraction knobs (jobs, cache location) —
    # they are runtime settings, not part of the persisted model.
    _configure_model(model, split, config, tune=False)
    part = split.train if args.split == "train" else split.test
    predictions = model.predict(part.X)
    if args.show_predictions:
        print(" ".join(str(p) for p in predictions))
    error = error_rate(part.y, predictions)
    print(f"{args.dataset} {args.split} error: {error:.6g} ({part.n_samples} series)")
    return 0


# -- serving verbs -------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace, pipeline_config=None) -> int:
    """Run the HTTP inference server over a model store.

    With ``pipeline_config`` (the ``pipeline`` verb), a
    :class:`repro.pipeline.PipelineController` is attached to the
    shared state before traffic flows: stream ticks feed drift
    detectors, and ``/v1/pipeline`` answers on both front ends.
    """
    from repro.serve import (
        ModelStore,
        create_async_server,
        create_server,
        serve_forever,
    )
    from repro.serve.store import ModelStoreError

    if args.max_sessions < 1:
        raise SystemExit(f"--max-sessions must be >= 1, got {args.max_sessions}")
    if args.stream_buffer is not None and args.stream_buffer < 1:
        raise SystemExit(f"--stream-buffer must be >= 1, got {args.stream_buffer}")
    store = ModelStore(args.store)
    try:
        names = store.names()
    except ModelStoreError as exc:
        raise SystemExit(str(exc)) from None
    if not names:
        raise SystemExit(
            f"model store {args.store} is empty; save a model first, e.g. "
            "`python -m repro fit --model mvg:A --dataset BeetleFly "
            f"--store {args.store} --name beetlefly`"
        )
    if args.model is not None and args.model not in names:
        raise SystemExit(
            f"no model named {args.model!r} in {args.store} "
            f"(known: {', '.join(names)})"
        )
    options = dict(
        default_model=args.model,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        feature_cache_size=args.feature_cache_size,
        jobs=args.jobs,
        reload_interval_seconds=args.reload_interval,
        max_stream_sessions=args.max_sessions,
    )
    if args.stream_buffer is not None:
        options["stream_buffer_points"] = args.stream_buffer
    if args.loop == "asyncio":
        server = create_async_server(store, host=args.host, port=args.port, **options)
    else:
        try:
            server = create_server(store, host=args.host, port=args.port, **options)
        except OSError as exc:
            raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}") from None
    if pipeline_config is not None:
        from repro.pipeline import PipelineController

        server.state.attach_pipeline(PipelineController(store, pipeline_config))
    if args.loop == "asyncio":
        try:
            host, port = server.start_background()
        except OSError as exc:
            server.close()
            raise SystemExit(str(exc)) from None
    else:
        host, port = server.server_address[:2]
    print(
        f"serving {len(names)} model(s) from {args.store} on http://{host}:{port} "
        f"({args.loop} front end)"
    )
    print(
        "  POST /v1/classify   POST /v1/batch   POST /v1/stream   "
        "GET /v1/models   GET /v1/runs   GET /healthz   GET /metrics"
    )
    print(f"  micro-batching: up to {args.max_batch} requests / {args.max_wait_ms}ms window")
    print(
        f"  streaming: up to {args.max_sessions} sessions, "
        f"{server.state.stream_buffer_points} queued points/session "
        "(429 + Retry-After beyond)"
    )
    if args.reload_interval > 0:
        print(f"  hot reload: store polled every {args.reload_interval}s")
    if pipeline_config is not None:
        print(
            "  continuous pipeline: GET/POST /v1/pipeline "
            f"(drift threshold {pipeline_config.drift.threshold}, "
            f"min {pipeline_config.retrain.min_windows} windows, "
            f"cooldown {pipeline_config.cooldown_seconds}s)"
        )
    if args.loop == "asyncio":
        # The loop runs on a background thread; park the main thread so
        # SIGINT lands here and triggers a clean shutdown.
        try:
            server.wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
    else:
        serve_forever(server)
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    """``serve`` plus the closed drift→retrain→hot-reload loop."""
    from repro.pipeline import DriftConfig, PipelineConfig, RetrainConfig

    if args.reload_interval <= 0:
        raise SystemExit(
            "pipeline needs hot reload to pick up retrained versions; "
            "--reload-interval must be > 0"
        )
    try:
        config = PipelineConfig(
            drift=DriftConfig(
                reference_window=args.drift_reference,
                test_window=args.drift_test,
                smoothing_span=args.smoothing_span,
                threshold=args.drift_threshold,
                consecutive=args.drift_consecutive,
            ),
            retrain=RetrainConfig(
                min_windows=args.min_windows,
                max_windows=args.max_windows,
                max_attempts=args.retrain_attempts,
                max_concurrent=args.retrain_concurrency,
                seed=args.seed if args.seed is not None else 0,
            ),
            cooldown_seconds=args.cooldown,
            enabled=not args.start_disabled,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return _cmd_serve(args, pipeline_config=config)


def _stream_points(args: argparse.Namespace):
    """The point source for ``stream``: a dataset series or stdin floats."""
    if args.dataset:
        split = _load_split(args.dataset, args.orientation)
        part = split.train if args.split == "train" else split.test
        if not 0 <= args.index < part.n_samples:
            raise SystemExit(
                f"--index {args.index} out of range for {args.dataset} "
                f"{args.split} ({part.n_samples} series)"
            )
        for value in part.X[args.index]:
            yield float(value)
        return
    import math
    import shlex

    for line in sys.stdin:
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            raise SystemExit(f"cannot parse stdin line {line!r}: {exc}") from None
        for token in tokens:
            try:
                value = float(token)
            except ValueError:
                raise SystemExit(
                    f"stdin token {token!r} is not a number; feed one or more "
                    "whitespace-separated floats per line"
                ) from None
            if not math.isfinite(value):
                raise SystemExit(
                    f"stdin token {token!r} is not finite; series values "
                    "must be finite numbers"
                )
            yield value


def _format_tick(tick: dict) -> str:
    import json as _json

    return f"{tick['offset']}\t{tick['label']}\t{_json.dumps(tick['scores'])}"


def _post_json_retrying(
    endpoint: str,
    payload: dict,
    attempts: int,
    rng,
    timeout: float = 120.0,
) -> dict:
    """POST JSON with bounded retry on transient failures.

    Connection errors (server restarting, socket reset) and 5xx
    responses back off exponentially with jitter and retry up to
    ``attempts`` times; 4xx responses are the client's fault and exit
    immediately.  A long stream should survive a server hiccup — e.g.
    a hot reload or a retrain-induced GC pause — instead of aborting
    on the first refused connection.
    """
    import json as _json
    import urllib.error
    import urllib.request

    last_error = "no attempts made"
    for attempt in range(1, max(1, attempts) + 1):
        request = urllib.request.Request(
            endpoint,
            data=_json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return _json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            if exc.code < 500:
                raise SystemExit(f"server returned {exc.code}: {detail}") from None
            last_error = f"server returned {exc.code}: {detail}"
        except (urllib.error.URLError, OSError) as exc:
            last_error = f"cannot reach {endpoint}: {exc}"
        if attempt <= max(1, attempts) - 1:
            delay = min(5.0, 0.2 * (2 ** (attempt - 1)))
            delay *= 1.0 + rng.uniform(-0.25, 0.25)
            print(
                f"# transient failure (attempt {attempt}/{attempts}), "
                f"retrying in {delay:.2f}s: {last_error}",
                file=sys.stderr,
            )
            time.sleep(delay)
    raise SystemExit(f"giving up after {attempts} attempt(s): {last_error}")


def _cmd_stream(args: argparse.Namespace) -> int:
    """Stream points through a sliding window and print one label per tick.

    Local mode (``--store``) runs the streaming pipeline in-process:
    the window's visibility graphs are maintained incrementally
    (:class:`repro.core.streaming.StreamingFeatureExtractor`) and each
    tick predicts from the cached features.  Remote mode (``--url``)
    drives a ``/v1/stream`` session on a running server.
    """
    points = _stream_points(args)
    emitted = 0
    if args.url:
        import random

        endpoint = args.url.rstrip("/") + "/v1/stream"
        # Seeded: retry timing is reproducible run to run.
        retry_rng = random.Random(0)

        def post(payload: dict) -> dict:
            return _post_json_retrying(endpoint, payload, args.retries, retry_rng)

        create: dict = {"op": "create", "window": args.window, "stride": args.stride}
        if args.model:
            create["model"] = args.model
        if args.version:
            create["version"] = args.version
        session = post(create)
        sid = session["session"]
        print(
            f"# session {sid}: {session['model']} v{session['version']}, "
            f"window {session['window']}, stride {session['stride']}",
            file=sys.stderr,
        )
        chunk: list[float] = []
        try:
            def flush() -> None:
                nonlocal emitted
                if not chunk:
                    return
                outcome = post({"op": "append", "session": sid, "points": chunk})
                chunk.clear()
                for tick in outcome["results"]:
                    print(_format_tick(tick))
                    emitted += 1

            for value in points:
                chunk.append(value)
                if len(chunk) >= args.chunk:
                    flush()
            flush()
        finally:
            # Best effort: a failed close (server gone, session already
            # retired) must not mask the error that ended the stream.
            try:
                post({"op": "close", "session": sid})
            except SystemExit:
                pass
    else:
        from repro.serve import InferenceEngine, ModelStore, StreamSession
        from repro.serve.store import ModelStoreError

        store = ModelStore(args.store)
        try:
            names = store.names()
            if not names:
                raise SystemExit(
                    f"model store {args.store} is empty; save a model first with "
                    "`python -m repro fit ... --store DIR --name NAME`"
                )
            name = args.model or (names[0] if len(names) == 1 else None)
            if name is None:
                raise SystemExit(
                    f"multiple models in {args.store} ({', '.join(names)}); "
                    "pick one with --model"
                )
            model = store.load(name, args.version or "latest")
        except ModelStoreError as exc:
            raise SystemExit(str(exc)) from None
        with InferenceEngine(model, name=name) as engine:
            expected = engine.expected_features
            if expected is not None:
                from repro.core.streaming import check_window_layout

                try:
                    check_window_layout(
                        args.window, engine.feature_config, expected, repr(name)
                    )
                except ValueError as exc:
                    raise SystemExit(str(exc)) from None
            try:
                session = StreamSession("local", engine, args.window, args.stride)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
            for value in points:
                outcome = session.append([value])
                for tick in outcome["results"]:
                    print(_format_tick(tick))
                    emitted += 1
    print(f"# {emitted} tick(s) emitted", file=sys.stderr)
    if emitted == 0:
        print(
            f"# window never filled ({args.window} points needed)",
            file=sys.stderr,
        )
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    """List (or delete from) a model store."""
    from repro.experiments.reporting import format_table
    from repro.serve import ModelStore
    from repro.serve.store import ModelStoreError

    store = ModelStore(args.store)
    try:
        if args.delete:
            name, _, version = args.delete.partition("@")
            store.delete(name, version or None)
            print(f"deleted {args.delete} from {args.store}")
            return 0
        records = store.list_models()
    except ModelStoreError as exc:
        raise SystemExit(str(exc)) from None
    if not records:
        print(f"model store {args.store} is empty")
        return 0
    latest = {r.name: r.version for r in records}
    rows = [
        [
            record.name,
            f"v{record.version}" + (" (latest)" if latest[record.name] == record.version else ""),
            record.kind,
            f"{record.size_bytes / 1024:.1f} KiB",
            record.created_at,
            record.sha256[:12],
            record.metadata.get("dataset", ""),
        ]
        for record in records
    ]
    print(
        format_table(
            ["Name", "Version", "Kind", "Size", "Created", "SHA-256", "Dataset"],
            rows,
            title=f"Model store {args.store}",
        )
    )
    return 0


# -- argument parsing ----------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's artifacts and drive registered models.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="command")

    for command in ALL_COMMANDS + ("all",):
        sub = subparsers.add_parser(command, help=f"regenerate {command}")
        _add_run_options(sub)

    # `datasets` is a pure listing — no run-config flag affects it.
    subparsers.add_parser("datasets", help="list the surrogate archive")

    sub = subparsers.add_parser("list-models", help="list registered components")
    sub.add_argument(
        "--kind",
        choices=("classifier", "extractor", "mapper"),
        default=None,
        help="restrict the listing to one component kind",
    )

    def _add_model_dataset_options(sub: argparse.ArgumentParser, model_flag: bool) -> None:
        if model_flag:
            sub.add_argument(
                "--model",
                required=True,
                metavar="SPEC",
                help="registry spec, e.g. mvg:G or boss (see list-models)",
            )
        sub.add_argument(
            "--dataset", required=True, metavar="NAME", help="archive dataset name"
        )
        sub.add_argument(
            "--orientation",
            choices=("table2", "table3"),
            default="table2",
            help="train/test orientation of the split (default table2)",
        )

    sub = subparsers.add_parser(
        "run", help="fit+evaluate a registered model on one dataset"
    )
    _add_model_dataset_options(sub, model_flag=True)
    sub.add_argument(
        "--no-tune",
        action="store_true",
        help="skip grid-search tuning (fixed default hyper-parameters)",
    )
    _add_run_options(sub, sweep=False)

    sub = subparsers.add_parser("fit", help="fit a model and save it (file or store)")
    _add_model_dataset_options(sub, model_flag=True)
    sub.add_argument("--out", default=None, metavar="PATH", help="output JSON path")
    sub.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="model-store directory to publish the fitted model into",
    )
    sub.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="model name in the store (with --store)",
    )
    sub.add_argument(
        "--no-tune", action="store_true", help="skip grid-search tuning"
    )
    _add_run_options(sub, sweep=False)

    sub = subparsers.add_parser("predict", help="evaluate a saved model on a split")
    _add_model_dataset_options(sub, model_flag=False)
    sub.add_argument(
        "--model-file", required=True, metavar="PATH", help="JSON model from `fit`"
    )
    sub.add_argument(
        "--split", choices=("train", "test"), default="test", help="split to evaluate"
    )
    sub.add_argument(
        "--show-predictions",
        action="store_true",
        help="print the predicted labels before the error summary",
    )
    _add_run_options(sub, sweep=False, tuning=False)

    def _add_serve_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store", required=True, metavar="DIR", help="model-store directory"
        )
        sub.add_argument(
            "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
        )
        sub.add_argument(
            "--port",
            type=int,
            default=8765,
            help="bind port (default 8765; 0 = any free port)",
        )
        sub.add_argument(
            "--model",
            default=None,
            metavar="NAME",
            help="default model for requests that name none (default: the only stored model)",
        )
        sub.add_argument(
            "--max-batch",
            type=int,
            default=32,
            metavar="N",
            help="micro-batch size cap (default 32)",
        )
        sub.add_argument(
            "--max-wait-ms",
            type=float,
            default=5.0,
            metavar="MS",
            help="micro-batch coalescing window in milliseconds (default 5)",
        )
        sub.add_argument(
            "--feature-cache-size",
            type=int,
            default=1024,
            metavar="N",
            help="in-memory per-series feature LRU entries (default 1024; 0 disables)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for batched feature extraction",
        )
        sub.add_argument(
            "--loop",
            choices=("asyncio", "threads"),
            default="asyncio",
            help="front end: asyncio event loop (default) or thread-per-connection",
        )
        sub.add_argument(
            "--reload-interval",
            type=float,
            default=1.0,
            metavar="SECONDS",
            help="hot-reload store poll interval (default 1.0; 0 disables)",
        )
        sub.add_argument(
            "--max-sessions",
            type=int,
            default=64,
            metavar="N",
            help="concurrent stream-session cap; create answers 429 beyond it "
            "(default 64)",
        )
        sub.add_argument(
            "--stream-buffer",
            type=int,
            default=None,
            metavar="POINTS",
            help="per-session cap on queued stream points; a full queue answers "
            "429 with Retry-After (default 32768)",
        )

    sub = subparsers.add_parser("serve", help="HTTP inference server over a model store")
    _add_serve_options(sub)

    sub = subparsers.add_parser(
        "pipeline",
        help="serve with closed-loop drift detection, retraining and hot reload",
    )
    _add_serve_options(sub)
    group = sub.add_argument_group("continuous pipeline")
    group.add_argument(
        "--drift-threshold",
        type=float,
        default=0.5,
        metavar="X",
        help="drift score at which a tick counts toward triggering (default 0.5)",
    )
    group.add_argument(
        "--drift-reference",
        type=int,
        default=64,
        metavar="N",
        help="ticks frozen as the drift baseline (default 64)",
    )
    group.add_argument(
        "--drift-test",
        type=int,
        default=32,
        metavar="N",
        help="rolling ticks compared against the baseline (default 32)",
    )
    group.add_argument(
        "--smoothing-span",
        type=int,
        default=5,
        metavar="N",
        help="label-smoothing majority-vote span (default 5)",
    )
    group.add_argument(
        "--drift-consecutive",
        type=int,
        default=3,
        metavar="N",
        help="consecutive drifting ticks needed to trigger (default 3)",
    )
    group.add_argument(
        "--min-windows",
        type=int,
        default=32,
        metavar="N",
        help="labeled windows required before retraining (default 32)",
    )
    group.add_argument(
        "--max-windows",
        type=int,
        default=512,
        metavar="N",
        help="most recent windows kept per model (default 512)",
    )
    group.add_argument(
        "--retrain-attempts",
        type=int,
        default=3,
        metavar="N",
        help="fit+publish attempts per retrain job (default 3)",
    )
    group.add_argument(
        "--retrain-concurrency",
        type=int,
        default=1,
        metavar="N",
        help="concurrent retrain jobs (default 1 — single-CPU friendly)",
    )
    group.add_argument(
        "--cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="pause after a retrain before the next may trigger (default 30)",
    )
    group.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="seed for retrained models and retry jitter (default 0)",
    )
    group.add_argument(
        "--start-disabled",
        action="store_true",
        help="observe drift but do not trigger retrains until POST /v1/pipeline enables",
    )

    sub = subparsers.add_parser(
        "stream",
        help="stream points through a sliding window, one label per tick",
    )
    source = sub.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--store", metavar="DIR", help="model-store directory (local streaming)"
    )
    source.add_argument(
        "--url", metavar="URL", help="base URL of a running server (remote /v1/stream)"
    )
    sub.add_argument(
        "--window",
        type=int,
        required=True,
        metavar="N",
        help="sliding-window length in points (the model's training length)",
    )
    sub.add_argument(
        "--stride",
        type=int,
        default=1,
        metavar="N",
        help="new points between labels (default 1)",
    )
    sub.add_argument(
        "--model", default=None, metavar="NAME", help="stored model name"
    )
    sub.add_argument(
        "--version", default=None, metavar="V", help="model version (default latest)"
    )
    sub.add_argument(
        "--dataset",
        default=None,
        metavar="NAME",
        help="stream one archive series instead of stdin floats",
    )
    sub.add_argument(
        "--index", type=int, default=0, metavar="I", help="series index (with --dataset)"
    )
    sub.add_argument(
        "--split", choices=("train", "test"), default="test", help="split (with --dataset)"
    )
    sub.add_argument(
        "--orientation",
        choices=("table2", "table3"),
        default="table2",
        help="split orientation (with --dataset)",
    )
    sub.add_argument(
        "--chunk",
        type=int,
        default=256,
        metavar="N",
        help="points per append request in --url mode (default 256)",
    )
    sub.add_argument(
        "--retries",
        type=int,
        default=5,
        metavar="N",
        help="attempts per request in --url mode before giving up on "
        "transient connection errors/5xx (default 5; 1 = no retry)",
    )

    sub = subparsers.add_parser("models", help="list / delete model-store entries")
    sub.add_argument(
        "--store", required=True, metavar="DIR", help="model-store directory"
    )
    sub.add_argument(
        "--delete",
        default=None,
        metavar="NAME[@VERSION]",
        help="delete one version (NAME@v2) or every version (NAME) of a model",
    )

    sub = subparsers.add_parser(
        "check", help="run the project-invariant static analyzer (repro.analysis)"
    )
    sub.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files/directories to scan (default: src/repro)",
    )
    sub.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is a stable CI artifact, default text)",
    )
    sub.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted findings to subtract",
    )
    sub.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write current findings as a baseline and exit 0",
    )
    sub.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="anchor for reported paths and path-scoped rules (default: cwd)",
    )

    sub = subparsers.add_parser(
        "list-rules", help="list the static-analysis rules `repro check` enforces"
    )
    sub.add_argument(
        "--verbose",
        action="store_true",
        help="show each rule's full convention notes",
    )

    sub = subparsers.add_parser(
        "db", help="query the experiment ledger (ledger.db)"
    )
    dbsub = sub.add_subparsers(dest="db_command", required=True)

    def _add_db_target(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--db",
            default=None,
            metavar="FILE",
            help="ledger database path (overrides --store/--results-dir)",
        )
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="use a model store's ledger (<DIR>/ledger.db)",
        )
        p.add_argument(
            "--results-dir",
            default=None,
            metavar="DIR",
            help="use a results directory's ledger (<DIR>/ledger.db; "
            "default ./results)",
        )
        p.add_argument(
            "--format",
            choices=("table", "json"),
            default="table",
            help="output format (default table)",
        )

    dbq = dbsub.add_parser("query", help="filter/sort ledger rows")
    _add_db_target(dbq)
    dbq.add_argument("--kind", default=None, help="row kind (run/sweep/eval/fit/publish/drift/delete/gc)")
    dbq.add_argument("--label", default=None, help="sweep or store-model name")
    dbq.add_argument("--model", default=None, metavar="SPEC", help="registry spec / method name")
    dbq.add_argument("--dataset", default=None, help="archive dataset name")
    dbq.add_argument("--seed", type=int, default=None, help="exact seed")
    dbq.add_argument("--search", default=None, metavar="TEXT", help="full-text search over row metadata")
    dbq.add_argument(
        "--order-by",
        default=None,
        metavar="COLUMN",
        help="sort column (e.g. error, accuracy, created_at; default: newest first)",
    )
    dbq.add_argument("--limit", type=int, default=50, metavar="N", help="max rows (default 50)")
    dbq.add_argument(
        "--best-per-dataset",
        action="store_true",
        help="one winning row (lowest error) per dataset across all matching runs",
    )

    dbs = dbsub.add_parser("stats", help="aggregate ledger statistics")
    _add_db_target(dbs)

    dbg = dbsub.add_parser(
        "gc", help="collect store blobs no ledger row or manifest references"
    )
    dbg.add_argument(
        "--store", required=True, metavar="DIR", help="model-store directory to scan"
    )
    dbg.add_argument(
        "--db",
        default=None,
        metavar="FILE",
        help="ledger consulted for liveness (default <store>/ledger.db)",
    )
    dbg.add_argument(
        "--delete",
        action="store_true",
        help="actually delete orphans (default: dry run, report only)",
    )
    dbg.add_argument(
        "--dry-run",
        action="store_true",
        help="report without deleting (the default; explicit for scripts)",
    )
    dbg.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default table)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "datasets":
        _print_datasets()
        return 0
    if args.command == "list-models":
        return _cmd_list_models(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "fit":
        return _cmd_fit(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "pipeline":
        return _cmd_pipeline(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "models":
        return _cmd_models(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "list-rules":
        return _cmd_list_rules(args)
    if args.command == "db":
        from repro.ledger.cli import run_db

        return run_db(args)
    config = build_run_config(args)
    commands = ALL_COMMANDS if args.command == "all" else (args.command,)
    for command in commands:
        _dispatch(command, config)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
