"""The paper's contribution: multiscale visibility graphs and the MVG
feature-extraction / classification pipeline."""

from repro.core.batch import BatchFeatureExtractor
from repro.core.config import (
    FeatureConfig,
    HEURISTIC_COLUMNS,
    heuristic_config,
)
from repro.core.graph_kernel import WLVisibilityKernelClassifier
from repro.core.features import (
    FeatureExtractor,
    extract_feature_vector,
    graph_feature_dict,
)
from repro.core.multiscale import (
    multiscale_approximations,
    multiscale_representation,
    paa,
)
from repro.core.pipeline import MVGClassifier, default_param_grid
from repro.core.stacking_pipeline import MVGStackingClassifier, default_families
from repro.core.streaming import StreamingFeatureExtractor, feature_layout_width

__all__ = [
    "paa",
    "multiscale_approximations",
    "multiscale_representation",
    "FeatureConfig",
    "heuristic_config",
    "HEURISTIC_COLUMNS",
    "FeatureExtractor",
    "BatchFeatureExtractor",
    "StreamingFeatureExtractor",
    "feature_layout_width",
    "graph_feature_dict",
    "extract_feature_vector",
    "MVGClassifier",
    "default_param_grid",
    "MVGStackingClassifier",
    "default_families",
    "WLVisibilityKernelClassifier",
]
