"""Graph-kernel time series classification (the Section-5 suggestion).

The related-work section notes that "graph kernel methods can be used
for evaluating graph similarity, which may potentially be used for TSC
as well".  This module implements that idea end to end with the
Weisfeiler–Lehman (WL) subtree kernel:

1. a series is converted to its (multiscale) visibility graphs;
2. vertices start labelled by (bucketed) degree and are iteratively
   relabelled with hashes of their neighbourhood label multisets (the
   1-WL colour refinement);
3. the per-graph colour histogram across all refinement rounds is the
   explicit WL feature map — the WL kernel is its inner product;
4. a linear classifier (logistic regression on L2-normalised feature
   maps) classifies the series.

Exposed as :class:`WLVisibilityKernelClassifier` and compared against
MVG in the ablation benchmark.
"""

from __future__ import annotations

import zlib
from collections import Counter

import numpy as np

from repro.core.multiscale import multiscale_representation
from repro.graph.adjacency import Graph
from repro.graph.visibility import horizontal_visibility_graph, visibility_graph
from repro.ml.base import BaseEstimator, check_X_y
from repro.ml.linear import LogisticRegression


def wl_color_histogram(
    graph: Graph, n_iterations: int, degree_buckets: int = 8
) -> Counter:
    """WL subtree feature map of one graph.

    Vertices start from bucketed-degree labels (visibility graphs of
    different series lengths still share the initial vocabulary), then
    ``n_iterations`` rounds of colour refinement follow; the returned
    counter accumulates every colour seen in every round.
    """
    n = graph.n_vertices
    degrees = graph.degrees()
    max_degree = max(int(degrees.max()), 1) if n else 1
    labels = [
        f"d{min(int(d) * degree_buckets // (max_degree + 1), degree_buckets - 1)}"
        for d in degrees
    ]
    histogram: Counter = Counter(labels)
    # Compress the (long) signatures into stable short colour ids.
    # zlib.crc32 (not hash()) keeps colours identical across processes
    # regardless of PYTHONHASHSEED.  One palette is shared by all
    # refinement rounds, so a signature seen again (stable colourings
    # converge after a couple of rounds) reuses its interned id instead
    # of being re-hashed and re-allocated each round.
    palette: dict[str, str] = {}
    for _ in range(n_iterations):
        new_labels = []
        for u in range(n):
            neighborhood = sorted(labels[v] for v in graph.adjacency(u))
            new_labels.append(f"{labels[u]}|{','.join(neighborhood)}")
        for signature in new_labels:
            if signature not in palette:
                palette[signature] = f"c{zlib.crc32(signature.encode()):08x}"
        labels = [palette[s] for s in new_labels]
        histogram.update(labels)
    return histogram


def wl_kernel_value(a: Counter, b: Counter) -> float:
    """WL subtree kernel: inner product of two colour histograms."""
    if len(a) > len(b):
        a, b = b, a
    return float(sum(count * b.get(color, 0) for color, count in a.items()))


class WLVisibilityKernelClassifier(BaseEstimator):
    """TSC through WL kernels on (multiscale) visibility graphs.

    Parameters
    ----------
    n_iterations:
        WL refinement rounds (2-3 is the usual sweet spot).
    multiscale:
        Use all PAA scales (as MVG does) or only the original series.
    use_hvg:
        Include the HVG of each scale alongside the VG.
    """

    def __init__(
        self,
        n_iterations: int = 2,
        multiscale: bool = True,
        use_hvg: bool = True,
        tau: int = 15,
        C: float = 10.0,
    ):
        self.n_iterations = n_iterations
        self.multiscale = multiscale
        self.use_hvg = use_hvg
        self.tau = tau
        self.C = C

    def _series_histogram(self, series: np.ndarray) -> Counter:
        scales = (
            multiscale_representation(series, tau=self.tau)
            if self.multiscale
            else [series]
        )
        histogram: Counter = Counter()
        for scale_index, scaled in enumerate(scales):
            graphs = [visibility_graph(scaled)]
            if self.use_hvg:
                graphs.append(horizontal_visibility_graph(scaled))
            for graph_index, graph in enumerate(graphs):
                colors = wl_color_histogram(graph, self.n_iterations)
                # Scope colours per (scale, graph type) so a T0-VG colour
                # never collides with a T2-HVG colour.
                histogram.update(
                    {f"{scale_index}.{graph_index}.{c}": v for c, v in colors.items()}
                )
        return histogram

    def _vectorize(self, histograms: list[Counter]) -> np.ndarray:
        matrix = np.zeros((len(histograms), len(self._vocabulary)))
        for row, histogram in enumerate(histograms):
            for color, count in histogram.items():
                column = self._vocabulary.get(color)
                if column is not None:
                    matrix[row, column] = count
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        return matrix / np.where(norms == 0.0, 1.0, norms)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "WLVisibilityKernelClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        histograms = [self._series_histogram(series) for series in X]
        vocabulary = sorted(set().union(*histograms)) if histograms else []
        self._vocabulary = {color: i for i, color in enumerate(vocabulary)}
        features = self._vectorize(histograms)
        self._model = LogisticRegression(C=self.C, max_iter=300)
        self._model.fit(features, y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        histograms = [self._series_histogram(series) for series in X]
        return self._model.predict_proba(self._vectorize(histograms))

    def kernel_matrix(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Explicit WL kernel matrix between two series collections
        (exposed for use with kernel machines)."""
        X = np.asarray(X, dtype=np.float64)
        hist_x = [self._series_histogram(series) for series in X]
        hist_y = (
            hist_x
            if Y is None
            else [self._series_histogram(series) for series in np.asarray(Y, dtype=np.float64)]
        )
        out = np.empty((len(hist_x), len(hist_y)))
        for i, a in enumerate(hist_x):
            for j, b in enumerate(hist_y):
                out[i, j] = wl_kernel_value(a, b)
        return out
