"""Batched MVG feature extraction: worker fan-out + on-disk caching.

:class:`BatchFeatureExtractor` is the sweep-facing front end of the
feature pipeline.  It produces matrices bit-for-bit identical to
:class:`repro.core.features.FeatureExtractor` (property-tested) while
adding the two levers that dominate sweep wall-clock:

* **multiprocessing fan-out** — ``n_jobs`` worker processes split the
  per-series extraction (the embarrassingly parallel part of every
  sweep); row order is deterministic regardless of worker scheduling
  because results are collected with an order-preserving ``Pool.map``;
* **an on-disk feature cache** — each extracted vector is persisted
  under ``REPRO_RESULTS_DIR`` (``feature_cache/`` subdirectory) keyed by
  the SHA-1 of the raw series bytes plus the full
  :class:`~repro.core.config.FeatureConfig`, so re-sweeps (table2,
  table3 and the figure harnesses all re-extract the same splits) pay
  the extraction cost once per (series, config) ever.

Cache files are written atomically (temp file + ``os.replace``) so
concurrent sweeps can share a cache directory; unreadable or truncated
entries are treated as misses.  Set ``cache=False`` to bypass the disk
entirely (the property tests compare both paths).
"""

from __future__ import annotations

import hashlib
import json
import threading
from multiprocessing import Pool
from pathlib import Path

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.features import extract_feature_vector
from repro.ioutil import atomic_write_bytes, atomic_write_npy

#: Subdirectory of ``REPRO_RESULTS_DIR`` holding cached feature vectors.
CACHE_SUBDIR = "feature_cache"

#: Version component of every cache key.  Bump whenever the *semantics*
#: of feature extraction change (new formulas, changed normalisation,
#: reordered columns) so stale vectors from older code can never be
#: served; layout-preserving refactors don't need a bump.
FEATURE_CACHE_VERSION = 2  # v2: exact-integer assortativity, dense-matvec eigencentrality

# Worker-side state, set once per worker by the pool initializer so the
# config is not re-pickled with every task.
_WORKER_CONFIG: FeatureConfig | None = None


def _init_worker(config: FeatureConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _extract_one(series: np.ndarray) -> tuple[np.ndarray, list[str]]:
    return extract_feature_vector(series, _WORKER_CONFIG)


def env_positive_int(name: str) -> int | None:
    """Back-compat alias of :func:`repro.api.config.env_positive_int`.

    The implementation moved to the config module — the single place
    allowed to read ``os.environ`` under the ``env-mutation`` rule of
    :mod:`repro.analysis`.  Imported lazily: :mod:`repro.api` pulls in
    the registry, which imports this module.
    """
    from repro.api.config import env_positive_int as _env_positive_int

    return _env_positive_int(name)


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    The env read goes through the :meth:`RunConfig.from_env
    <repro.api.config.RunConfig.from_env>` deprecation machinery, so
    relying on ``REPRO_JOBS`` here warns once per process exactly like
    every other deprecated knob.
    """
    if n_jobs is None:
        from repro.api.config import env_jobs_fallback

        return env_jobs_fallback() or 1
    if n_jobs != int(n_jobs) or n_jobs <= 0:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    return int(n_jobs)


def _config_token(config: FeatureConfig) -> str:
    """Stable identity string of a config (all fields, fixed order),
    prefixed with the cache schema version."""
    return (
        f"v{FEATURE_CACHE_VERSION};scales={config.scales};"
        f"graphs={config.graphs};features={config.features};tau={config.tau}"
    )


def series_cache_key(series: np.ndarray, config: FeatureConfig) -> str:
    """SHA-1 cache key of one series under one config.

    Hashes the raw float64 bytes (so numerically equal but
    differently-typed inputs normalise to the same key) together with
    the config token and the series length.
    """
    digest = hashlib.sha1()
    digest.update(_config_token(config).encode())
    digest.update(f";n={series.size};".encode())
    digest.update(np.ascontiguousarray(series, dtype=np.float64).tobytes())
    return digest.hexdigest()


class BatchFeatureExtractor:
    """Drop-in batched replacement for
    :class:`~repro.core.features.FeatureExtractor`.

    Parameters
    ----------
    config:
        Feature configuration (default :class:`FeatureConfig()`).
    n_jobs:
        Worker processes for cache misses.  ``None`` defers to the
        ``REPRO_JOBS`` environment knob (default 1 = in-process serial,
        no pool is spawned).
    cache:
        Whether to read/write the on-disk feature cache.
    cache_dir:
        Cache directory override; defaults to
        ``REPRO_RESULTS_DIR/feature_cache``.
    keep_pool:
        Keep the worker pool alive between ``transform`` calls.  Sweeps
        extract in a few huge calls, so they amortise the pool spawn
        naturally; a long-lived inference server extracts in many small
        micro-batches, where respawning workers per call would cost more
        than the extraction itself.  Call :meth:`close` (or use the
        extractor as a context manager) to release the workers.

    ``transform`` output is bit-for-bit identical to the serial
    extractor for every ``(n_jobs, cache)`` combination; only wall-clock
    changes.
    """

    _GUARDED_BY = {"_pool": "_pool_lock"}

    def __init__(
        self,
        config: FeatureConfig | None = None,
        n_jobs: int | None = None,
        cache: bool = True,
        cache_dir: str | Path | None = None,
        keep_pool: bool = False,
    ):
        self.config = config or FeatureConfig()
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.cache = cache
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.keep_pool = keep_pool
        # Serialises lazy pool spawn against close(): two concurrent
        # transforms must never double-spawn, and close() must never
        # observe a half-assigned pool.
        self._pool_lock = threading.Lock()
        self._pool: Pool | None = None
        self.feature_names_: list[str] | None = None
        #: Cache statistics of the most recent ``transform`` call.
        self.last_cache_hits_ = 0
        self.last_cache_misses_ = 0

    # The live pool (and its unpicklable lock) never travel through
    # pickling (workers) or the deep copies pipeline cloning performs;
    # copies re-spawn on demand.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_pool"] = None
        del state["_pool_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Release a persistent worker pool (no-op without one)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "BatchFeatureExtractor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cache plumbing ---------------------------------------------------
    def cache_dir(self) -> Path:
        """The active cache directory (created on demand)."""
        if self._cache_dir is not None:
            path = self._cache_dir
        else:
            from repro.experiments.harness import results_dir

            path = results_dir() / CACHE_SUBDIR
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _layout_path(self, directory: Path, length: int) -> Path:
        token = hashlib.sha1(
            f"{_config_token(self.config)};n={length}".encode()
        ).hexdigest()[:16]
        return directory / f"layout_{token}.json"

    def _load_layout(self, directory: Path, length: int) -> list[str] | None:
        path = self._layout_path(directory, length)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        names = payload.get("feature_names")
        if not isinstance(names, list):
            return None
        return [str(name) for name in names]

    def _store_layout(self, directory: Path, length: int, names: list[str]) -> None:
        payload = {
            "config": _config_token(self.config),
            "series_length": length,
            "feature_names": names,
        }
        atomic_write_bytes(
            self._layout_path(directory, length),
            json.dumps(payload, indent=1).encode(),
        )

    @staticmethod
    def _load_vector(path: Path) -> np.ndarray | None:
        try:
            vector = np.load(path, allow_pickle=False)
        except (OSError, ValueError):
            return None
        if vector.ndim != 1 or vector.dtype != np.float64:
            return None
        return vector

    # -- extraction -------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, n_features)`` MVG feature matrix of ``X``.

        Rows are returned in input order.  Cached rows are loaded from
        disk; the remainder is extracted serially (``n_jobs == 1``) or by
        a worker pool, then persisted.
        """
        X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValueError(f"X must be 1- or 2-dimensional, got shape {X.shape}")
        n_samples, length = X.shape

        rows: list[np.ndarray | None] = [None] * n_samples
        names: list[str] | None = None
        miss_indices = list(range(n_samples))

        directory: Path | None = None
        keys: list[str] | None = None
        if self.cache:
            directory = self.cache_dir()
            names = self._load_layout(directory, length)
            if names is not None:
                keys = [series_cache_key(row, self.config) for row in X]
                miss_indices = []
                for i, key in enumerate(keys):
                    vector = self._load_vector(directory / f"{key}.npy")
                    if vector is not None and vector.size == len(names):
                        rows[i] = vector
                    else:
                        miss_indices.append(i)

        self.last_cache_hits_ = n_samples - len(miss_indices)
        self.last_cache_misses_ = len(miss_indices)

        if miss_indices:
            extracted = self._extract_batch([X[i] for i in miss_indices])
            for i, (vector, row_names) in zip(miss_indices, extracted, strict=True):
                if names is None:
                    names = row_names
                elif names != row_names:
                    raise ValueError("inconsistent feature layout across series")
                rows[i] = vector
            if self.cache and directory is not None:
                assert names is not None
                self._store_layout(directory, length, names)
                if keys is None:
                    keys = [series_cache_key(row, self.config) for row in X]
                for i in miss_indices:
                    atomic_write_npy(directory / f"{keys[i]}.npy", rows[i])

        self.feature_names_ = names
        return np.stack(rows)

    def _extract_batch(
        self, series_list: list[np.ndarray]
    ) -> list[tuple[np.ndarray, list[str]]]:
        n_jobs = min(self.n_jobs, len(series_list))
        if n_jobs <= 1:
            return [extract_feature_vector(s, self.config) for s in series_list]
        chunksize = max(1, len(series_list) // (n_jobs * 4))
        if self.keep_pool:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = Pool(
                        self.n_jobs, initializer=_init_worker, initargs=(self.config,)
                    )
                pool = self._pool
            # map() runs outside the lock: extraction can take seconds
            # and close() must stay callable (it terminates the workers,
            # which surfaces here as a pool error, not a deadlock).
            return pool.map(_extract_one, series_list, chunksize=chunksize)
        with Pool(n_jobs, initializer=_init_worker, initargs=(self.config,)) as pool:
            return pool.map(_extract_one, series_list, chunksize=chunksize)

    def n_features(self, series_length: int) -> int:
        """Number of features produced for series of ``series_length``."""
        probe = np.linspace(0.0, 1.0, series_length)
        vector, _ = extract_feature_vector(probe, self.config)
        return vector.size


