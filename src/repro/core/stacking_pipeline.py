"""MVG with stacked generalization (Section 4.3 / Algorithm 2).

Combines MVG features with a :class:`repro.ml.stacking.StackingEnsemble`
over the three classifier families the paper stacks: XGBoost-style
boosting, random forests and SVMs.  Features are min-max scaled once so
the SVM family behaves (tree families are insensitive to monotone
scaling, as the paper notes).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.batch import BatchFeatureExtractor
from repro.ml.base import BaseEstimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.preprocessing import MinMaxScaler
from repro.ml.resample import RandomOverSampler
from repro.ml.stacking import StackingEnsemble
from repro.ml.svm import SVC

FamilySpec = dict[str, tuple[BaseEstimator, dict[str, list[Any]]]]


def default_families(random_state: int | None = None) -> FamilySpec:
    """The three classifier families stacked in Section 4.3."""
    return {
        "xgboost": (
            GradientBoostingClassifier(
                subsample=0.5, colsample_bytree=0.5, random_state=random_state
            ),
            {"learning_rate": [0.1, 0.3], "n_estimators": [25, 50]},
        ),
        "rf": (
            RandomForestClassifier(random_state=random_state),
            {"n_estimators": [25, 50], "max_depth": [None, 8]},
        ),
        "svm": (
            SVC(random_state=random_state),
            {"C": [1.0, 10.0], "gamma": ["scale", 0.1]},
        ),
    }


class MVGStackingClassifier(BaseEstimator):
    """MVG features + stacked generalization over classifier families.

    ``families`` defaults to :func:`default_families`; restrict it to a
    single family to reproduce the per-family rows of Figure 7.
    """

    def __init__(
        self,
        config: FeatureConfig | None = None,
        families: FamilySpec | None = None,
        top_k: int = 2,
        cv: int = 3,
        oversample: bool = True,
        random_state: int | None = None,
        n_jobs: int | None = None,
        feature_cache: bool = True,
        cache_dir: str | None = None,
    ):
        self.config = config
        self.families = families
        self.top_k = top_k
        self.cv = cv
        self.oversample = oversample
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.feature_cache = feature_cache
        self.cache_dir = cache_dir

    def _make_extractor(self) -> BatchFeatureExtractor:
        return BatchFeatureExtractor(
            self.config or FeatureConfig(),
            n_jobs=self.n_jobs,
            cache=self.feature_cache,
            cache_dir=self.cache_dir,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MVGStackingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        extractor = self._make_extractor()
        features = extractor.transform(X)
        self.feature_names_ = extractor.feature_names_
        self.classes_ = np.unique(y)

        self._scaler = MinMaxScaler()
        features = self._scaler.fit_transform(features)
        if self.oversample:
            features, y = RandomOverSampler(self.random_state).fit_resample(features, y)
        self._ensemble = StackingEnsemble(
            families=self.families or default_families(self.random_state),
            top_k=self.top_k,
            cv=self.cv,
            random_state=self.random_state,
        )
        self._ensemble.fit(features, y)
        return self

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        extractor = self._make_extractor()
        return self._scaler.transform(
            extractor.transform(np.asarray(X, dtype=np.float64))
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("_ensemble")
        return self._ensemble.predict(self._prepare(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("_ensemble")
        return self._ensemble.predict_proba(self._prepare(X))
