"""Model interpretation utilities behind the Figure-10 case study.

The paper argues MVG keeps a degree of comprehensibility despite using
only statistical features: booster importances rank features, and
per-class feature distributions show *why* a feature separates classes.
This module packages those tools (plus permutation importance, which is
classifier-agnostic) for reuse outside the case-study harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.metrics import accuracy_score


@dataclass(frozen=True)
class FeatureReport:
    """Interpretation record for one feature."""

    name: str
    importance: float
    class_means: dict[int, float]
    class_stds: dict[int, float]

    @property
    def separability(self) -> float:
        """Between-class mean spread divided by the largest within-class
        std — a quick visual-separability score (cf. the Figure 10 KDE
        diagonal)."""
        means = list(self.class_means.values())
        stds = list(self.class_stds.values())
        spread = max(means) - min(means)
        scale = max(max(stds), 1e-12)
        return spread / scale


def class_conditional_report(
    features: np.ndarray,
    y: np.ndarray,
    names: list[str],
    importances: np.ndarray,
    top_n: int = 10,
) -> list[FeatureReport]:
    """Per-class distribution summaries for the ``top_n`` most important
    features (the scatter-matrix data of Figure 10)."""
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(y)
    importances = np.asarray(importances, dtype=np.float64)
    if features.shape[1] != len(names) or len(names) != importances.size:
        raise ValueError("features, names and importances must align")
    order = np.argsort(-importances)[:top_n]
    reports = []
    for column in order:
        values = features[:, column]
        class_means = {}
        class_stds = {}
        for label in np.unique(y):
            subset = values[y == label]
            class_means[int(label)] = float(subset.mean())
            class_stds[int(label)] = float(subset.std())
        reports.append(
            FeatureReport(
                name=names[int(column)],
                importance=float(importances[column]),
                class_means=class_means,
                class_stds=class_stds,
            )
        )
    return reports


def permutation_importance(
    model: BaseEstimator,
    features: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    random_state: int | None = None,
) -> np.ndarray:
    """Mean accuracy drop when each feature column is shuffled.

    Classifier-agnostic alternative to split-count importances; columns
    whose permutation does not hurt accuracy score ~0 (can be slightly
    negative through noise).
    """
    features = np.asarray(features, dtype=np.float64)
    y = np.asarray(y)
    rng = np.random.default_rng(random_state)
    baseline = accuracy_score(y, model.predict(features))
    out = np.zeros(features.shape[1])
    for column in range(features.shape[1]):
        drops = []
        for _ in range(n_repeats):
            shuffled = features.copy()
            shuffled[:, column] = rng.permutation(shuffled[:, column])
            drops.append(baseline - accuracy_score(y, model.predict(shuffled)))
        out[column] = float(np.mean(drops))
    return out


def top_features_table(reports: list[FeatureReport]) -> str:
    """Render feature reports as an aligned text table."""
    from repro.experiments.reporting import format_table

    rows = []
    for report in reports:
        for label in sorted(report.class_means):
            rows.append(
                [
                    report.name,
                    f"class {label}",
                    report.class_means[label],
                    report.class_stds[label],
                    report.separability,
                ]
            )
    return format_table(
        ["Feature", "Class", "mean", "std", "separability"], rows
    )
