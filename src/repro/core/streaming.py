"""Streaming (sliding-window) MVG feature extraction.

:class:`StreamingFeatureExtractor` produces, for every tick of a
sliding window over an unbounded series, the *same* feature vector
:func:`repro.core.features.extract_feature_vector` would produce for
that window (bit-identical; property-tested in
``tests/test_streaming_features.py``) — without rebuilding the window's
visibility graphs from scratch:

* **scale 0** is one :class:`~repro.graph.incremental.SlidingGraphWindow`
  advanced a point at a time;
* **downscaled scales** ride the PAA alignment: at scale ``i`` the
  window is averaged in blocks of ``2^i`` points, and a window whose
  start has the same residue mod ``2^i`` reuses the *same* block means
  shifted by whole blocks.  The extractor therefore keeps a small bank
  of phase slots per scale (``2^i`` of them, allocated lazily); each
  tick exactly one slot per scale advances by one coarse point while
  the rest stay frozen until their phase comes round again.  Scales the
  alignment cannot serve (window not divisible into ``2^i`` blocks, the
  generalised fractional-PAA regime) fall back to a full batch build of
  that scale's graphs — correct, just not incremental.

Graph *construction* and graph *metrics* are both delta-maintained:
each sliding graph feeds its push/evict edge deltas to an
:class:`~repro.graph.incremental_metrics.IncrementalMetricBank`, whose
states fold them into O(degree)-local accumulators (motif primitives,
degree moments, k-core drift) and derive the per-tick values through
the *same* final reductions the batch metric functions use.  That
shared derivation is what makes bit-identity a structural property
rather than a numerical accident: equal window graphs give equal
integer accumulators give equal floats.  Scales the PAA alignment
cannot serve keep using the batch metric functions on freshly built
graphs — the same values, just recomputed.

The per-window vector also shares the batch cache identity
(:func:`repro.core.batch.series_cache_key` of the window under the same
config), which is how the serving tier's feature LRU lets streaming and
one-shot classify traffic reuse each other's work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.features import (
    _build_scale_graphs,
    assemble_feature_dict,
    graph_feature_dict,
)
from repro.core.multiscale import paa
from repro.graph.incremental import SlidingGraphWindow
from repro.graph.incremental_metrics import IncrementalMetricBank

__all__ = [
    "SlidingWindowBuffer",
    "StreamingFeatureExtractor",
    "check_window_layout",
    "feature_layout_width",
    "scale_plan",
]


def check_window_layout(
    window: int, config: FeatureConfig, expected: int, model_label: str
) -> None:
    """Raise ``ValueError`` when a ``window``-point stream cannot feed a
    model fitted on ``expected`` features.

    One shared message for the server (mapped to a 400 at session
    create) and the local ``stream`` CLI, so the two surfaces reject
    the same windows with the same wording.
    """
    width = feature_layout_width(window, config)
    if width != expected:
        raise ValueError(
            f"window of {window} points yields {width} features, but "
            f"{model_label} was fitted on a layout of {expected}; use the "
            "training series length"
        )


class SlidingWindowBuffer:
    """The last ``window`` points of a stream, O(1) amortised per push.

    A ``2 * window`` backing array: pushes append until the write head
    hits the end, then the live half slides down once — so the current
    window is always one contiguous slice.  Shared by the feature
    extractor (raw-point ring) and generic stream sessions.

    Parameters
    ----------
    window:
        Window length in points.
    backing:
        Optional preallocated float64 array of at least ``2 * window``
        elements to use as the ring storage (a slab row from
        :class:`repro.core.slab.SlabPool`); ownership stays with the
        caller, who releases it after the buffer is discarded.

    Thread safety: none — the owner serialises access (stream sessions
    hold their session lock around every push/view).
    """

    __slots__ = ("window", "_buf", "_pos", "count")

    def __init__(self, window: int, backing: np.ndarray | None = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        if backing is None:
            self._buf = np.empty(2 * self.window, dtype=np.float64)
        else:
            if backing.ndim != 1 or backing.size < 2 * self.window:
                raise ValueError(
                    f"backing must hold at least {2 * self.window} elements, "
                    f"got shape {backing.shape}"
                )
            if backing.dtype != np.float64:
                raise ValueError(f"backing must be float64, got {backing.dtype}")
            self._buf = backing[: 2 * self.window]
        self._pos = 0
        self.count = 0

    @property
    def filled(self) -> bool:
        return self.count >= self.window

    def push(self, value: float) -> None:
        if self._pos == self._buf.size:
            self._buf[: self.window] = self._buf[self.window :]
            self._pos = self.window
        self._buf[self._pos] = value
        self._pos += 1
        self.count += 1

    def view(self) -> np.ndarray:
        """The current window as a zero-copy slice (do not mutate)."""
        if not self.filled:
            raise ValueError(f"window not filled: {self.count}/{self.window} points")
        return self._buf[self._pos - self.window : self._pos]

    def values(self) -> np.ndarray:
        """The current window, oldest first (a copy)."""
        return self.view().copy()


def scale_plan(window: int, config: FeatureConfig) -> list[tuple[int, int]]:
    """``(scale_index, scale_length)`` pairs a window of ``window`` points
    yields under ``config`` — exactly the scales
    :func:`repro.core.multiscale.multiscale_representation` produces,
    filtered by the config's scale selection."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    lengths = [(0, window)]
    length = window // 2
    scale = 1
    while length > config.tau:
        lengths.append((scale, length))
        length //= 2
        scale += 1
    if config.scales == "uvg":
        plan = lengths[:1]
    elif config.scales == "amvg":
        plan = lengths[1:]
    else:  # mvg
        plan = lengths
    if not plan:
        raise ValueError(
            f"series of length {window} yields no scales for "
            f"{config.scales!r} with tau={config.tau}"
        )
    return plan


#: ``(include_stats, include_extended) -> features per graph``, probed
#: once — the per-graph feature layout is size-independent.
_WIDTH_CACHE: dict[tuple[bool, bool], int] = {}


def _per_graph_width(config: FeatureConfig) -> int:
    key = (config.include_stats, config.include_extended)
    width = _WIDTH_CACHE.get(key)
    if width is None:
        from repro.graph.fast import fast_visibility_graph

        probe = fast_visibility_graph(np.linspace(0.0, 1.0, 8))
        width = len(
            graph_feature_dict(
                probe,
                include_stats=config.include_stats,
                include_extended=config.include_extended,
            )
        )
        _WIDTH_CACHE[key] = width
    return width


def feature_layout_width(window: int, config: FeatureConfig) -> int:
    """Features a window of ``window`` points extracts under ``config``.

    Cheap (no extraction): scale count is arithmetic, the per-graph
    layout is constant and probed once per feature mode.  Used by the
    serving tier to reject a stream window whose layout cannot match
    the model's fitted feature width *before* any points flow.
    """
    plan = scale_plan(window, config)
    return len(plan) * len(config.graph_types()) * _per_graph_width(config)


class _PhaseClock:
    """Accumulator splitting a tick's wall clock into phases.

    Metric banks add the time their ``apply`` spends folding deltas (it
    runs *inside* the graph-maintenance pushes); the extractor then
    reassigns that share from the graph phase to the metric phase.
    """

    __slots__ = ("applied",)

    now = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self.applied = 0.0

    def add(self, elapsed: float) -> None:
        self.applied += elapsed


@dataclass
class _ScaleSlot:
    """One phase of one downscaled scale: its sliding graphs, their
    metric banks, plus the global index of the next raw block to fold
    in."""

    graphs: SlidingGraphWindow
    next_start: int
    banks: dict[str, IncrementalMetricBank] = field(default_factory=dict)

    def reset(self, start: int) -> None:
        self.graphs.clear()  # emits "clear" deltas: the banks reset too
        self.next_start = start


@dataclass
class _ScaleState:
    """Per-scale streaming state (``block == 1`` is scale 0)."""

    scale: int
    length: int
    block: int
    streamable: bool
    slots: dict[int, _ScaleSlot] = field(default_factory=dict)


class StreamingFeatureExtractor:
    """Per-tick MVG features of a sliding window over a point stream.

    Parameters
    ----------
    window:
        Window length in raw points (>= 4; the classifier input length).
    config:
        Feature configuration; must match the model the features feed.
    slab:
        Optional :class:`repro.core.slab.SlabPool`.  When given, the
        raw-point ring and every phase slot's graph buffers are slab
        rows acquired from the pool and returned by :meth:`close` —
        the footprint that lets thousands of sessions churn without
        allocator pressure.

    Usage::

        extractor = StreamingFeatureExtractor(window=256)
        for x in stream:
            extractor.push(x)
            if extractor.filled:
                vector = extractor.features()   # == batch extraction

    ``push`` is O(1); all graph maintenance happens inside
    :meth:`features`, which advances each scale's active phase slot by
    the blocks completed since that phase last served a tick (one block
    per tick at stride 1) and re-extracts the metric features.

    Thread safety: none — an extractor belongs to one stream session,
    whose lock serialises every call.  A shared ``slab`` pool must be
    thread-safe (``SlabPool`` is).
    """

    def __init__(
        self, window: int, config: FeatureConfig | None = None, slab=None
    ):
        self.config = config or FeatureConfig()
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        self.window = int(window)
        self._slab = slab
        self._plan = scale_plan(self.window, self.config)
        self._scales: list[_ScaleState] = []
        for scale, length in self._plan:
            block = self.window // length
            streamable = (
                scale == 0
                or (self.window % length == 0 and block == 1 << scale)
            )
            self._scales.append(_ScaleState(scale, length, block, streamable))
        if slab is None:
            self._ring = SlidingWindowBuffer(self.window)
            self._ring_row = None
        else:
            self._ring_row = slab.acquire(2 * self.window)
            self._ring = SlidingWindowBuffer(self.window, backing=self._ring_row)
        self._phase_clock = _PhaseClock()
        self.feature_names_: list[str] | None = None
        #: Introspection: slots advanced incrementally vs full scale
        #: rebuilds (the fallback path) over this extractor's lifetime.
        self.incremental_ticks_ = 0
        self.full_builds_ = 0
        #: Completed :meth:`features` calls (lets callers detect whether
        #: a tick actually extracted or was served from a cache).
        self.features_served_ = 0
        #: Wall-clock split of the last :meth:`features` call:
        #: ``graph`` (window/PAA upkeep + visibility-graph maintenance)
        #: vs ``metrics`` (delta folding + metric value derivation).
        self.last_phase_seconds_: dict[str, float] = {"graph": 0.0, "metrics": 0.0}

    # -- the point stream --------------------------------------------------
    @property
    def count(self) -> int:
        """Points pushed so far."""
        return self._ring.count

    @property
    def filled(self) -> bool:
        """Whether a full window is available."""
        return self._ring.filled

    def push(self, value: float) -> None:
        """Append one point to the stream."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(f"series values must be finite, got {value!r}")
        self._ring.push(value)

    def push_many(self, values) -> None:
        """Append a batch of points."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.push(value)

    def window_values(self) -> np.ndarray:
        """The current window, oldest first (a copy)."""
        return self._ring.values()

    def close(self) -> None:
        """Return every slab row to the pool (idempotent).

        Called on session close; the extractor is unusable afterwards.
        A no-op for extractors built without a slab pool.
        """
        if self._slab is None:
            return
        for state in self._scales:
            for slot in state.slots.values():
                slot.graphs.release_buffers()
            state.slots.clear()
        slab, self._slab = self._slab, None
        if self._ring_row is not None:
            slab.release(self._ring_row)
            self._ring_row = None

    # -- feature extraction ------------------------------------------------
    def features(self) -> np.ndarray:
        """The window's feature vector (names in ``feature_names_``).

        Bit-identical to
        ``extract_feature_vector(window_values(), config)[0]``.
        """
        window = self._ring.view()  # raises until the window fills
        start = self._ring.count - self.window
        graph_types = self.config.graph_types()
        clock = self._phase_clock
        clock.applied = 0.0
        t0 = clock.now()
        sources = [
            self._scale_sources(
                state,
                window if state.scale == 0 else paa(window, state.length),
                start,
            )
            for state in self._scales
        ]
        t1 = clock.now()
        values: list[float] = []
        names: list[str] = []
        for state, scale_sources in zip(self._scales, sources):
            prefix_scale = f"T{state.scale}"
            for graph_type in graph_types:
                features = scale_sources[graph_type]()
                prefix = f"{prefix_scale} {graph_type.upper()}"
                for label, value in features.items():
                    names.append(f"{prefix} {label}")
                    values.append(value)
        t2 = clock.now()
        # Delta folding ran inside the maintenance pushes; reassign its
        # share so the split reads graph-upkeep vs metric work.
        self.last_phase_seconds_ = {
            "graph": (t1 - t0) - clock.applied,
            "metrics": (t2 - t1) + clock.applied,
        }
        self.features_served_ += 1
        if self.feature_names_ is None:
            self.feature_names_ = names
        return np.asarray(values, dtype=np.float64)

    def _scale_sources(
        self, state: _ScaleState, scaled: np.ndarray, start: int
    ) -> dict:
        """Feature-dict thunks per graph type for the window at ``start``.

        Streamable scales advance the phase slot matching the window's
        block alignment; its metric banks fold the resulting edge deltas
        as they happen, so the thunks only derive final values — no
        graph materialisation, no batch recomputation.  Non-streamable
        scales rebuild the scale's graphs and fall back to the batch
        metric functions (same values, recomputed).
        """
        graph_types = self.config.graph_types()
        if not state.streamable:
            self.full_builds_ += 1
            graphs = _build_scale_graphs(
                np.ascontiguousarray(scaled), graph_types, fast=True
            )
            return {
                kind: (
                    lambda g=graphs[kind]: graph_feature_dict(
                        g,
                        include_stats=self.config.include_stats,
                        include_extended=self.config.include_extended,
                    )
                )
                for kind in graph_types
            }
        block = state.block
        phase = start % block
        slot = state.slots.get(phase)
        if slot is None:
            slot = state.slots[phase] = self._new_slot(state, start)
        if slot.next_start < start or slot.next_start > start + self.window:
            # This phase fell a whole window behind (large stride or a
            # long gap between feature calls): start it over.
            slot.reset(start)
        end = start + self.window
        while slot.next_start <= end - block:
            slot.graphs.push(scaled[(slot.next_start - start) // block])
            slot.next_start += block
        self.incremental_ticks_ += 1
        return {
            kind: (lambda bank=slot.banks[kind]: self._bank_features(bank))
            for kind in graph_types
        }

    def _new_slot(self, state: _ScaleState, start: int) -> _ScaleSlot:
        """A phase slot with one metric bank per graph kind, subscribed
        before any point is pushed so the banks see every delta."""
        slot = _ScaleSlot(
            SlidingGraphWindow(
                self.config.graph_types(), window=state.length, allocator=self._slab
            ),
            start,
        )
        for kind, svg in slot.graphs.graphs.items():
            slot.banks[kind] = IncrementalMetricBank(
                svg,
                need_motifs=True,
                need_stats=self.config.include_stats,
                need_extended=self.config.include_extended,
                phase_clock=self._phase_clock,
            )
        return slot

    def _bank_features(self, bank: IncrementalMetricBank) -> dict[str, float]:
        """One graph's feature dict from its delta-maintained bank —
        the streaming twin of :func:`~repro.core.features.graph_feature_dict`."""
        motifs = bank.motifs()
        stats = bank.statistics() if self.config.include_stats else None
        extended = bank.extended() if self.config.include_extended else None
        return assemble_feature_dict(motifs, stats, extended)
