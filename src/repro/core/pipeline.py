"""End-to-end MVG classifier: feature extraction + generic classifier.

``MVGClassifier`` wires Algorithm 1's features into any estimator of
:mod:`repro.ml`.  The default mirrors the paper's main setup: an
XGBoost-style booster tuned by stratified 3-fold grid search on cross
entropy, with random oversampling of minority classes and (for SVMs)
min-max feature scaling.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.batch import BatchFeatureExtractor
from repro.ml.base import BaseEstimator, clone
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.model_selection import GridSearchCV
from repro.ml.preprocessing import MinMaxScaler
from repro.ml.resample import RandomOverSampler
from repro.ml.svm import SVC


def default_param_grid(full: bool = False) -> dict[str, list[Any]]:
    """The XGBoost hyper-parameter grid of Section 4.2.

    ``full=True`` returns the paper's complete grid (3 learning rates x
    10 estimator counts x 2 depths); the default is a light grid with the
    same axes, sized for laptop-scale experiment sweeps.
    """
    if full:
        return {
            "learning_rate": [0.01, 0.1, 0.3],
            "n_estimators": list(range(10, 101, 10)),
            "max_depth": [10, 20],
        }
    return {
        "learning_rate": [0.1, 0.3],
        "n_estimators": [25, 50],
        "max_depth": [4],
    }


class MVGClassifier(BaseEstimator):
    """MVG feature extraction followed by a generic classifier.

    Parameters
    ----------
    config:
        Feature extraction configuration (default: full MVG, VG + HVG,
        all features — Table 2 column G).
    classifier:
        Any fitted-interface estimator; defaults to
        :class:`GradientBoostingClassifier` with the paper's 0.5
        subsample/colsample anti-overfitting setting.
    param_grid:
        When given, the classifier is tuned by :class:`GridSearchCV`
        (stratified 3-fold CV, cross-entropy scoring).
    oversample:
        Apply random oversampling of minority classes before fitting.
    scale_features:
        Min-max scale features (forced on automatically for SVMs).
    n_jobs:
        Worker processes for batched feature extraction (``None`` defers
        to the deprecated ``REPRO_JOBS`` env fallback, default 1).
    feature_cache:
        Whether extraction may use the on-disk per-series cache.
    """

    def __init__(
        self,
        config: FeatureConfig | None = None,
        classifier: BaseEstimator | None = None,
        param_grid: dict[str, list[Any]] | None = None,
        cv: int = 3,
        oversample: bool = True,
        scale_features: bool | None = None,
        random_state: int | None = None,
        n_jobs: int | None = None,
        feature_cache: bool = True,
        cache_dir: str | None = None,
    ):
        self.config = config
        self.classifier = classifier
        self.param_grid = param_grid
        self.cv = cv
        self.oversample = oversample
        self.scale_features = scale_features
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.feature_cache = feature_cache
        self.cache_dir = cache_dir

    def _make_extractor(self) -> BatchFeatureExtractor:
        return BatchFeatureExtractor(
            self.config or FeatureConfig(),
            n_jobs=self.n_jobs,
            cache=self.feature_cache,
            cache_dir=self.cache_dir,
        )

    # -- internals -----------------------------------------------------------
    def _make_classifier(self) -> BaseEstimator:
        if self.classifier is None:
            base: BaseEstimator = GradientBoostingClassifier(
                subsample=0.5, colsample_bytree=0.5, random_state=self.random_state
            )
        else:
            base = clone(self.classifier)
        if self.param_grid:
            return GridSearchCV(
                base,
                self.param_grid,
                cv=self.cv,
                scoring="neg_log_loss",
                random_state=self.random_state,
            )
        return base

    def _needs_scaling(self, classifier: BaseEstimator) -> bool:
        if self.scale_features is not None:
            return self.scale_features
        target = classifier.estimator if isinstance(classifier, GridSearchCV) else classifier
        return isinstance(target, SVC)

    # -- API ------------------------------------------------------------------
    def extract(self, X: np.ndarray) -> np.ndarray:
        """MVG features of raw series ``X`` (also records feature names).

        Extraction is batched: ``n_jobs`` (the CLI's ``--jobs``; the
        deprecated ``REPRO_JOBS`` env knob is a read-only fallback) fans
        it over worker processes, and vectors are served from /
        persisted to the on-disk feature cache.
        """
        extractor = self._make_extractor()
        features = extractor.transform(X)
        self.feature_names_ = extractor.feature_names_
        return features

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MVGClassifier":
        """Extract MVG features from raw series ``X`` and fit the classifier."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        features = self.extract(X)
        self.classes_ = np.unique(y)

        self._model = self._make_classifier()
        self._scaler = MinMaxScaler() if self._needs_scaling(self._model) else None
        if self._scaler is not None:
            features = self._scaler.fit_transform(features)
        if self.oversample:
            features, y = RandomOverSampler(self.random_state).fit_resample(features, y)
        self._model.fit(features, y)
        return self

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        extractor = self._make_extractor()
        features = extractor.transform(np.asarray(X, dtype=np.float64))
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return features

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels for raw series ``X``."""
        self._check_fitted("_model")
        return self._model.predict(self._prepare(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities for raw series ``X``."""
        self._check_fitted("_model")
        return self._model.predict_proba(self._prepare(X))

    def predict_from_features(self, features: np.ndarray) -> np.ndarray:
        """Predict from already-extracted (unscaled) MVG features.

        The serving tier extracts features itself — batched across
        concurrent requests, with its own per-series cache — and hands
        the matrix here; scaling is applied exactly as :meth:`predict`
        would.
        """
        self._check_fitted("_model")
        features = np.asarray(features, dtype=np.float64)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return self._model.predict(features)

    def predict_proba_from_features(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities from already-extracted MVG features."""
        self._check_fitted("_model")
        features = np.asarray(features, dtype=np.float64)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return self._model.predict_proba(features)

    @property
    def fitted_classifier_(self) -> BaseEstimator:
        """The underlying fitted classifier (after grid search, the refit
        best estimator)."""
        self._check_fitted("_model")
        if isinstance(self._model, GridSearchCV):
            return self._model.best_estimator_
        return self._model

    def feature_importances(self) -> list[tuple[str, float]]:
        """``(feature_name, importance)`` pairs sorted descending.

        Requires the underlying classifier to expose
        ``feature_importances_`` (trees/forests/boosting do).
        """
        model = self.fitted_classifier_
        importances = model.feature_importances_
        names = self.feature_names_ or [f"f{i}" for i in range(len(importances))]
        ranked = sorted(zip(names, importances), key=lambda item: -item[1])
        return [(name, float(value)) for name, value in ranked]
