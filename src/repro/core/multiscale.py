"""Multiscale time-series approximation (Definitions 3.1 and 3.2).

A series ``T0`` of length ``n`` is repeatedly halved with Piecewise
Aggregate Approximation: ``|T_i| = n / 2^i``, stopping before a scale
would drop to ``tau`` or fewer points (τ guards against "tiny and
meaningless representations"; the paper uses τ = 15 and stresses it is
an optimisation knob, not a tuned parameter).
"""

from __future__ import annotations

import numpy as np

#: Default minimum scale size (Section 3: "it is natural to set τ to a
#: small integer (e.g., τ = 15)").
DEFAULT_TAU = 15


def paa(series: np.ndarray, n_segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation (Equation 1).

    Reduces ``series`` to ``n_segments`` segment means.  Lengths that are
    not multiples of ``n_segments`` use the standard generalised PAA with
    fractional point weighting.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-dimensional, got shape {series.shape}")
    n = series.size
    if n_segments <= 0:
        raise ValueError("n_segments must be positive")
    if n_segments > n:
        raise ValueError(f"n_segments={n_segments} exceeds series length {n}")
    if n % n_segments == 0:
        return series.reshape(n_segments, n // n_segments).mean(axis=1)
    # Generalised PAA with fractional boundary-point weighting (preserves
    # the mean).  Conceptually each point is replicated ``n_segments``
    # times and the replicas regrouped into ``n_segments`` runs of ``n``;
    # materialising that is O(n * n_segments) memory (OOM around
    # n ~ 1e5), so each segment sum is assembled in O(n) total instead:
    # the run of points wholly or partly inside segment ``s`` starts at
    # point ``i0 = floor(s n / m)`` and ends at ``i1 = floor((s+1) n / m)``,
    # and in replica units the segment owes the previous segment ``r0``
    # replicas of its first point and claims ``r1`` replicas of point
    # ``i1``.  Per-segment ``reduceat`` sums keep the rounding error
    # local (no long-range prefix-sum cancellation).
    cuts = np.arange(n_segments + 1, dtype=np.int64) * n
    points = cuts // n_segments
    replicas = (cuts - points * n_segments).astype(np.float64)
    i0, r0 = points[:-1], replicas[:-1]
    i1, r1 = points[1:], replicas[1:]
    runs = np.add.reduceat(series, i0)
    # reduceat quirk: an empty run (i0 == next i0) yields series[i0], not 0.
    runs = np.where(i1 > i0, runs, 0.0)
    first_correction = r0 * series[i0]
    last_part = np.where(r1 > 0.0, series[np.minimum(i1, n - 1)], 0.0)
    return (n_segments * runs - first_correction + r1 * last_part) / n


def multiscale_approximations(
    series: np.ndarray, tau: int = DEFAULT_TAU
) -> list[np.ndarray]:
    """Downscaled approximations ``(T1, T2, ..., Tm)`` of Definition 3.1.

    Scale ``i`` has length ``n // 2^i``; scales with ``tau`` or fewer
    points are omitted.
    """
    series = np.asarray(series, dtype=np.float64)
    out: list[np.ndarray] = []
    length = series.size // 2
    while length > tau:
        out.append(paa(series, length))
        length //= 2
    return out


def multiscale_representation(
    series: np.ndarray, tau: int = DEFAULT_TAU
) -> list[np.ndarray]:
    """Full multiscale representation ``(T0, T1, ..., Tm)`` of Definition 3.2."""
    series = np.asarray(series, dtype=np.float64)
    return [series] + multiscale_approximations(series, tau)
