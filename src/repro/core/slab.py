"""Preallocated slab pools for per-session numeric ring state.

The streaming tier keeps one fixed-size numeric ring per (scale,
phase-slot) of every live session: the raw-point ring of
:class:`~repro.core.streaming.SlidingWindowBuffer` and the value/degree
buffers of every :class:`~repro.graph.incremental.SlidingVisibilityGraph`.
All of those arrays have their full size known at session create and
never grow (windowed sliding structures slide in place), which makes
them perfect slab citizens: instead of allocating and freeing thousands
of small numpy arrays as sessions churn, a shared :class:`SlabPool`
hands out rows carved from large preallocated blocks and takes them
back on session close.

Why it matters at 10k sessions: allocation cost and heap fragmentation
both scale with churn, not with the steady-state working set.  Pooling
turns session create/close into free-list pops/pushes against memory
that is already hot, and gives operations a single measurable figure —
``SlabPool.stats()``, exported as the ``repro_serve_slab_*`` gauges —
for the numeric footprint of the streaming tier.

A row acquired from the pool is *exclusively owned* by its acquirer
until released; the pool never reads or writes rows in between.  Rows
are zero-filled on acquire, so a recycled row is indistinguishable from
a fresh ``np.zeros``.

Thread safety: :class:`SlabPool` is fully thread-safe (sessions are
created and closed from the stream worker, watcher sweeps, and server
shutdown concurrently); every free-list and registry access happens
under one internal lock.  The *rows* it hands out are not locked — the
exclusive-ownership contract makes per-row locking unnecessary.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["SlabPool"]

#: Rows allocated per backing block.  Blocks are per (length, dtype)
#: class, so one block serves e.g. 32 sessions' raw rings of one
#: window size.
DEFAULT_BLOCK_ROWS = 32


class SlabPool:
    """A pool of reusable 1-D numpy rows, keyed by ``(length, dtype)``.

    Rows of the same length and dtype are carved from shared 2-D
    backing blocks; :meth:`acquire` pops a free row (allocating a new
    block only when the free list is empty) and :meth:`release` returns
    it for reuse.  Typical use is one pool per server, shared by every
    stream session::

        pool = SlabPool()
        ring = pool.acquire(2 * window)          # float64 row
        deg = pool.acquire(2 * window, "int64")  # int64 row
        ...
        pool.release(ring)
        pool.release(deg)

    Thread safety: all methods are safe to call from any thread; state
    is guarded by a single internal lock.  Acquired rows are exclusively
    owned by the caller until released and must not be shared between
    threads without external synchronisation.

    Parameters
    ----------
    block_rows:
        Rows preallocated per backing block (amortises allocation; the
        pool grows by this many rows at a time per size class).
    """

    _GUARDED_BY = {
        "_free": "_lock",
        "_blocks": "_lock",
        "_in_use": "_lock",
        "_rows_total": "_lock",
        "_bytes_total": "_lock",
    }

    def __init__(self, block_rows: int = DEFAULT_BLOCK_ROWS):
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = int(block_rows)
        self._lock = threading.Lock()
        #: key -> list of free rows (views into blocks), LIFO for warmth.
        self._free: dict[tuple[int, str], list[np.ndarray]] = {}
        #: key -> backing blocks (kept alive; rows are views into them).
        self._blocks: dict[tuple[int, str], list[np.ndarray]] = {}
        #: id(row) -> (key, row); holding the row reference pins its id.
        self._in_use: dict[int, tuple[tuple[int, str], np.ndarray]] = {}
        self._rows_total = 0
        self._bytes_total = 0

    @staticmethod
    def _key(length: int, dtype) -> tuple[int, str]:
        return (int(length), np.dtype(dtype).str)

    def acquire(self, length: int, dtype="float64") -> np.ndarray:
        """A zero-filled 1-D row of ``length`` elements of ``dtype``.

        The row is a view into a pooled block: it is exclusively the
        caller's until passed back to :meth:`release`.  Safe from any
        thread.
        """
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        key = self._key(length, dtype)
        with self._lock:
            free = self._free.get(key)
            if not free:
                free = self._grow(key)
            row = free.pop()
            self._in_use[id(row)] = (key, row)
        row[:] = 0
        return row

    def _grow(self, key: tuple[int, str]) -> list[np.ndarray]:  # guarded-by: _lock
        """Allocate one backing block for ``key`` and return its free list."""
        length, dtype = key
        block = np.zeros((self.block_rows, length), dtype=np.dtype(dtype))
        self._blocks.setdefault(key, []).append(block)
        free = self._free.setdefault(key, [])
        for i in range(self.block_rows):
            free.append(block[i])
        self._rows_total += self.block_rows
        self._bytes_total += block.nbytes
        return free

    def release(self, row: np.ndarray) -> None:
        """Return ``row`` (obtained from :meth:`acquire`) for reuse.

        The caller must drop every reference to the row afterwards.
        Raises ``KeyError`` for rows the pool does not currently own —
        including double releases.  Safe from any thread.
        """
        with self._lock:
            key, _ = self._in_use.pop(id(row))
            self._free[key].append(row)

    def stats(self) -> dict[str, int]:
        """Pool footprint counters (one consistent snapshot).

        ``rows_total`` / ``rows_in_use`` / ``bytes_total`` across all
        size classes, plus ``size_classes`` (distinct ``(length,
        dtype)`` keys).  Exported as the ``repro_serve_slab_*`` gauges.
        Safe from any thread.
        """
        with self._lock:
            return {
                "rows_total": self._rows_total,
                "rows_in_use": len(self._in_use),
                "bytes_total": self._bytes_total,
                "size_classes": len(self._blocks),
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SlabPool(rows_total={stats['rows_total']}, "
            f"rows_in_use={stats['rows_in_use']}, "
            f"bytes_total={stats['bytes_total']})"
        )
