"""Feature-extraction configurations, including the paper's heuristic grid.

Table 2 evaluates seven feature-set combinations, labelled A-G:

====  ======  ==========  ========
col   scales  graphs      features
====  ======  ==========  ========
A     UVG     HVG         MPDs
B     UVG     HVG         All
C     UVG     VG          MPDs
D     UVG     VG          All
E     UVG     VG + HVG    All
F     AMVG    VG + HVG    All
G     MVG     VG + HVG    All
====  ======  ==========  ========

``scales``: UVG uses only the original series; AMVG only the downscaled
approximations; MVG the union of both (Definitions 3.1-3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multiscale import DEFAULT_TAU

_VALID_SCALES = ("uvg", "amvg", "mvg")
_VALID_GRAPHS = ("hvg", "vg", "both")
_VALID_FEATURES = ("mpds", "all", "extended")


@dataclass(frozen=True)
class FeatureConfig:
    """What to build and what to extract.

    Attributes
    ----------
    scales:
        ``"uvg"`` (original series only), ``"amvg"`` (approximations
        only) or ``"mvg"`` (both).
    graphs:
        ``"hvg"``, ``"vg"`` or ``"both"``.
    features:
        ``"mpds"`` (motif probability distributions only), ``"all"``
        (MPDs + density, k-core, assortativity, degree statistics), or
        ``"extended"`` (``"all"`` plus the future-work features of
        Section 6: degree entropy, bipartivity, centrality, clustering).
    tau:
        Minimum scale size (Section 3).
    """

    scales: str = "mvg"
    graphs: str = "both"
    features: str = "all"
    tau: int = DEFAULT_TAU

    def __post_init__(self) -> None:
        if self.scales not in _VALID_SCALES:
            raise ValueError(f"scales must be one of {_VALID_SCALES}, got {self.scales!r}")
        if self.graphs not in _VALID_GRAPHS:
            raise ValueError(f"graphs must be one of {_VALID_GRAPHS}, got {self.graphs!r}")
        if self.features not in _VALID_FEATURES:
            raise ValueError(
                f"features must be one of {_VALID_FEATURES}, got {self.features!r}"
            )
        if self.tau < 0:
            raise ValueError("tau must be non-negative")

    @property
    def include_stats(self) -> bool:
        """Whether the non-MPD statistical features are extracted."""
        return self.features in ("all", "extended")

    @property
    def include_extended(self) -> bool:
        """Whether the Section-6 future-work features are extracted."""
        return self.features == "extended"

    def graph_types(self) -> tuple[str, ...]:
        """The graph kinds to build per scale."""
        return ("vg", "hvg") if self.graphs == "both" else (self.graphs,)


#: The Table 2 heuristic columns.
HEURISTIC_COLUMNS: dict[str, FeatureConfig] = {
    "A": FeatureConfig(scales="uvg", graphs="hvg", features="mpds"),
    "B": FeatureConfig(scales="uvg", graphs="hvg", features="all"),
    "C": FeatureConfig(scales="uvg", graphs="vg", features="mpds"),
    "D": FeatureConfig(scales="uvg", graphs="vg", features="all"),
    "E": FeatureConfig(scales="uvg", graphs="both", features="all"),
    "F": FeatureConfig(scales="amvg", graphs="both", features="all"),
    "G": FeatureConfig(scales="mvg", graphs="both", features="all"),
}


def heuristic_config(column: str) -> FeatureConfig:
    """The :class:`FeatureConfig` of a Table 2 column label (A-G)."""
    try:
        return HEURISTIC_COLUMNS[column.upper()]
    except KeyError:
        raise KeyError(
            f"unknown heuristic column {column!r}; expected one of "
            f"{sorted(HEURISTIC_COLUMNS)}"
        ) from None
