"""Feature extraction from multiscale visibility graphs (Algorithm 1).

Every series is expanded into its multiscale representation, each scale
is transformed into a VG and/or HVG, and from every graph we extract

* the motif probability distributions (normalised within the five
  size/connectivity groups of Section 3.1), and
* optionally the cheap statistical features: density, k-core,
  assortativity and degree max/min/mean.

Feature names follow the paper's Figure 10 convention, e.g.
``"T0 HVG P(M44)"`` or ``"T2 VG Assort."``, so the case study's output is
directly comparable.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.multiscale import multiscale_representation
from repro.graph.adjacency import Graph
from repro.graph.metrics import graph_statistics
from repro.graph.motifs import MOTIF_NAMES, count_motifs
from repro.graph.visibility import horizontal_visibility_graph, visibility_graph

#: Display names of the statistical (non-MPD) features.
_STAT_LABELS = {
    "density": "Density",
    "kcore": "KCore",
    "assortativity": "Assort.",
    "degree_max": "DegMax",
    "degree_min": "DegMin",
    "degree_mean": "DegMean",
}

_MOTIF_KEYS = tuple(MOTIF_NAMES)


def assemble_feature_dict(
    motifs, stats: dict[str, float] | None, extended: dict[str, float] | None
) -> dict[str, float]:
    """Labelled feature dict from already-computed metric values.

    The single assembly point both extraction paths share: the batch
    path (:func:`graph_feature_dict`) feeds it values from the stateless
    metric functions, the streaming path
    (:class:`repro.core.streaming.StreamingFeatureExtractor`) from its
    delta-maintained metric banks — so label set and ordering cannot
    drift between the two.
    """
    out = {
        f"P(M{key[1:]})": value
        for key, value in motifs.probability_distributions().items()
    }
    if stats is not None:
        out.update({_STAT_LABELS[key]: value for key, value in stats.items()})
    if extended is not None:
        out.update(extended)
    return out


def graph_feature_dict(
    graph: Graph, include_stats: bool = True, include_extended: bool = False
) -> dict[str, float]:
    """Features of a single graph, keyed by short feature label.

    ``include_extended`` adds the Section-6 future-work features
    (degree entropy, bipartivity, centrality, clustering statistics).
    """
    stats = graph_statistics(graph) if include_stats else None
    if include_extended:
        from repro.graph.extended_metrics import extended_graph_statistics

        extended = extended_graph_statistics(graph)
    else:
        extended = None
    return assemble_feature_dict(count_motifs(graph), stats, extended)


#: Reference (pure-Python) builders; the fast path must stay
#: graph-identical to these (enforced by the property tests).
_REFERENCE_BUILDERS = {
    "vg": visibility_graph,
    "hvg": horizontal_visibility_graph,
}

#: Below this scale length the reference builders win on constant
#: overhead; at or above it the array-backed fast builders take over.
_FAST_MIN_LENGTH = 48


def _build_scale_graphs(
    series: np.ndarray, graph_types: tuple[str, ...], fast: bool
) -> dict[str, Graph]:
    """Visibility graphs of one scale, keyed by graph type.

    The fast path dispatches to :mod:`repro.graph.fast`; when both graph
    types are requested it uses the combined builder, which shares the
    Cartesian-tree pass between the VG and the HVG.
    """
    if not fast or series.size < _FAST_MIN_LENGTH:
        return {kind: _REFERENCE_BUILDERS[kind](series) for kind in graph_types}
    from repro.graph.fast import (
        fast_horizontal_visibility_graph,
        fast_visibility_graph,
        visibility_graphs,
    )

    if len(graph_types) == 2:
        vg, hvg = visibility_graphs(series)
        return {"vg": vg, "hvg": hvg}
    if graph_types[0] == "vg":
        return {"vg": fast_visibility_graph(series)}
    return {"hvg": fast_horizontal_visibility_graph(series)}


def extract_feature_vector(
    series: np.ndarray, config: FeatureConfig, *, fast: bool = True
) -> tuple[np.ndarray, list[str]]:
    """Feature vector and names for one series under ``config``.

    Implements Algorithm 1: build graphs per scale, extract and
    concatenate features.  The scale set depends on ``config.scales``;
    scale 0 is the original series.  ``fast=False`` forces the reference
    graph builders (the outputs are identical either way; only the
    builder wall-clock differs).
    """
    series = np.asarray(series, dtype=np.float64)
    representation = multiscale_representation(series, tau=config.tau)
    if config.scales == "uvg":
        scales = [(0, representation[0])]
    elif config.scales == "amvg":
        scales = list(enumerate(representation))[1:]
    else:  # mvg
        scales = list(enumerate(representation))
    if not scales:
        raise ValueError(
            f"series of length {series.size} yields no scales for "
            f"{config.scales!r} with tau={config.tau}"
        )

    values: list[float] = []
    names: list[str] = []
    for scale_index, scaled_series in scales:
        graphs = _build_scale_graphs(scaled_series, config.graph_types(), fast)
        for graph_type in config.graph_types():
            graph = graphs[graph_type]
            features = graph_feature_dict(
                graph,
                include_stats=config.include_stats,
                include_extended=config.include_extended,
            )
            prefix = f"T{scale_index} {graph_type.upper()}"
            for label, value in features.items():
                names.append(f"{prefix} {label}")
                values.append(value)
    return np.asarray(values, dtype=np.float64), names


def feature_mask(names: list[str], config: FeatureConfig) -> np.ndarray:
    """Boolean mask selecting, from a *full* MVG feature layout (Table 2
    column G), the columns belonging to ``config``.

    Lets sweeps extract features once and slice every heuristic column
    out of the superset; equivalent to extracting under ``config``
    directly (asserted in the tests).
    """

    def keep(name: str) -> bool:
        scale_token, graph_token, _ = name.split(" ", 2)
        if config.scales == "uvg" and scale_token != "T0":
            return False
        if config.scales == "amvg" and scale_token == "T0":
            return False
        if config.graphs != "both" and graph_token.lower() != config.graphs:
            return False
        if config.features == "mpds" and "P(M" not in name:
            return False
        return True

    return np.array([keep(name) for name in names], dtype=bool)


class FeatureExtractor:
    """Batch MVG feature extraction with stable column ordering.

    Series of equal length produce identical feature layouts; mixed
    lengths are rejected at ``transform`` time because scale counts (and
    hence columns) would differ.

    ``fast=False`` pins the reference graph builders (useful for
    benchmarking the fast path against the seed behaviour; outputs are
    identical).  For multiprocessing fan-out and on-disk caching see
    :class:`repro.core.batch.BatchFeatureExtractor`.
    """

    def __init__(self, config: FeatureConfig | None = None, fast: bool = True):
        self.config = config or FeatureConfig()
        self.fast = fast
        self.feature_names_: list[str] | None = None

    def transform(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, n_features)`` matrix of MVG features."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        rows = []
        names: list[str] | None = None
        for series in X:
            vector, series_names = extract_feature_vector(
                series, self.config, fast=self.fast
            )
            if names is None:
                names = series_names
            elif names != series_names:
                raise ValueError("inconsistent feature layout across series")
            rows.append(vector)
        self.feature_names_ = names
        return np.stack(rows)

    def n_features(self, series_length: int) -> int:
        """Number of features produced for series of ``series_length``."""
        probe = np.linspace(0.0, 1.0, series_length)
        vector, _ = extract_feature_vector(probe, self.config)
        return vector.size
