"""Figure 10 case study: which MVG features drive FordA's classification.

Trains the XGBoost-style pipeline on the FordA surrogate, ranks features
by the booster's importances and prints, for the ten most important
features, per-class summary statistics of the *test* set — the data a
scatter-matrix / kernel-density plot would display.  The paper observes
a mix of T0 HVG motif probabilities and downscaled-VG assortativity
among the top features; the rendered output makes the same inspection
possible.

Run with ``python -m repro.experiments.case_study``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api.config import RunConfig, active_run_config
from repro.core.config import FeatureConfig
from repro.core.pipeline import MVGClassifier
from repro.data.archive import load_archive_dataset
from repro.experiments.harness import batch_extractor
from repro.experiments.reporting import format_table


def run_case_study(
    dataset: str = "FordA",
    top_n: int = 10,
    random_state: int | None = None,
    config: RunConfig | None = None,
) -> dict:
    """Fit MVG on ``dataset`` and collect the top-N feature statistics.

    Returns ``{"dataset", "error", "top_features": [...],
    "class_stats": {feature: {class: (mean, std)}}}``.
    """
    rc = active_run_config(config)
    random_state = rc.seed if random_state is None else random_state
    split = load_archive_dataset(dataset, orientation="table3")
    clf = MVGClassifier(
        random_state=random_state,
        n_jobs=rc.jobs,
        feature_cache=rc.feature_cache,
        cache_dir=str(rc.feature_cache_dir()),
    )
    clf.fit(split.train.X, split.train.y)
    predictions = clf.predict(split.test.X)
    error = float(np.mean(predictions != split.test.y))

    ranked = clf.feature_importances()[:top_n]
    top_features = [name for name, _ in ranked]

    # Batched extraction: honours the config's worker count and the
    # on-disk feature cache.
    extractor = batch_extractor(FeatureConfig(), rc)
    test_features = extractor.transform(split.test.X)
    names = extractor.feature_names_
    index = {name: i for i, name in enumerate(names)}

    class_stats: dict[str, dict[int, tuple[float, float]]] = {}
    for feature in top_features:
        column = test_features[:, index[feature]]
        per_class = {}
        for label in np.unique(split.test.y):
            values = column[split.test.y == label]
            per_class[int(label)] = (float(values.mean()), float(values.std()))
        class_stats[feature] = per_class

    return {
        "dataset": dataset,
        "error": error,
        "top_features": ranked,
        "class_stats": class_stats,
    }


def render_case_study(result: dict) -> str:
    """Format the case-study data as tables."""
    rows = [[name, importance] for name, importance in result["top_features"]]
    importance_table = format_table(
        ["Feature", "Importance"],
        rows,
        title=f"Figure 10: top features for {result['dataset']} "
        f"(test error {result['error']:.3f})",
    )
    stat_rows = []
    for feature, per_class in result["class_stats"].items():
        for label, (mean, std) in sorted(per_class.items()):
            stat_rows.append([feature, f"class {label}", mean, std])
    stats_table = format_table(
        ["Feature", "Class", "mean", "std"],
        stat_rows,
        title="Per-class distributions on the test set (scatter-matrix data)",
    )
    separable = []
    for feature, per_class in result["class_stats"].items():
        means = [mean for mean, _ in per_class.values()]
        stds = [std for _, std in per_class.values()]
        spread = max(means) - min(means)
        scale = max(max(stds), 1e-12)
        separable.append((feature, spread / scale))
    separable.sort(key=lambda item: -item[1])
    best_feature, ratio = separable[0]
    note = (
        f"\nMost visually separating feature: {best_feature} "
        f"(between-class mean spread = {ratio:.2f} x within-class std)"
    )
    return importance_table + "\n\n" + stats_table + note


def main() -> None:
    """CLI: render the case study for the dataset named in argv."""
    dataset = sys.argv[1] if len(sys.argv) > 1 else "FordA"
    print(render_case_study(run_case_study(dataset)))


if __name__ == "__main__":
    main()
