"""Table 3: accuracy and runtime benchmark against the five baselines.

Per dataset (UEA-UCR orientation): error rates of 1NN-ED, 1NN-DTW,
Learning Shapelets, Fast Shapelets, SAX-VSM and MVG; MVG's runtime split
into feature extraction (FE) and classification (Clf); FS's runtime as
the efficiency yard-stick.  The footer reproduces the best-count row,
the Wilcoxon-vs-MVG row and the total-runtime comparison driving
Figure 9.

Run with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api.config import RunConfig, active_run_config
from repro.core.config import FeatureConfig
from repro.data.archive import load_archive_dataset
from repro.experiments.harness import (
    active_param_grid,
    cache_load,
    cache_matches,
    cache_store,
    evaluate_baseline,
    evaluate_mvg,
    selected_datasets,
)
from repro.experiments.reporting import format_table
from repro.registry import TABLE3_BASELINE_NAMES, make
from repro.stats.comparison import pairwise_comparison

BASELINES: tuple[str, ...] = ("1NN-ED", "1NN-DTW", "LS", "FS", "SAX-VSM")
METHODS: tuple[str, ...] = BASELINES + ("MVG",)


def _baseline_factory(method: str, random_state: int):
    """Registry-backed factory for one Table 3 baseline method."""
    try:
        spec = TABLE3_BASELINE_NAMES[method]
    except KeyError:
        raise ValueError(f"unknown baseline {method!r}") from None

    def build():
        model = make(spec)
        if "random_state" in model._param_names():
            model.set_params(random_state=random_state)
        return model

    return build


def run_table3(
    force: bool = False,
    random_state: int | None = None,
    config: RunConfig | None = None,
) -> dict:
    """Run (or load) the Table 3 sweep.

    ``config`` carries dataset selection, worker count, results dir and
    grid choice (env shim when omitted); ``force``/``random_state``
    default to the config's ``force``/``seed``.

    Returns ``{"datasets": [...], "errors": {method: [...]},
    "mvg_fe": [...], "mvg_clf": [...], "fs_runtime": [...]}``.
    """
    rc = active_run_config(config)
    force = force or rc.force
    random_state = rc.seed if random_state is None else random_state
    datasets = selected_datasets(rc)
    settings = {"seed": random_state, "full_grid": rc.full_grid}
    cached = cache_load("table3", rc)
    if not force and cache_matches(cached, datasets, settings):
        return cached

    errors: dict[str, list[float]] = {method: [] for method in METHODS}
    mvg_fe: list[float] = []
    mvg_clf: list[float] = []
    fs_runtime: list[float] = []
    for name in datasets:
        split = load_archive_dataset(name, orientation="table3")
        grid = active_param_grid(split.train.n_classes, rc)
        for method in BASELINES:
            result = evaluate_baseline(
                split, method, _baseline_factory(method, random_state)
            )
            errors[method].append(result.error)
            if method == "FS":
                fs_runtime.append(result.fit_seconds + result.predict_seconds)
        # Table 3's FE column is itself a reproduced artifact (extraction
        # runtime vs Fast Shapelets), so the MVG evaluation always
        # bypasses the feature cache: a table2 run over the same archive
        # would otherwise pre-warm it and the column would report
        # near-zero disk-load time, dependent on artifact order.
        mvg = evaluate_mvg(
            split,
            FeatureConfig(),
            param_grid=grid,
            random_state=random_state,
            feature_cache=False,
            run_config=rc,
        )
        errors["MVG"].append(mvg.error)
        mvg_fe.append(mvg.feature_seconds)
        mvg_clf.append(mvg.fit_seconds + mvg.predict_seconds)
        print(
            f"[table3] {name}: "
            + " ".join(f"{m}={errors[m][-1]:.3f}" for m in METHODS)
            + f" | mvg={mvg_fe[-1] + mvg_clf[-1]:.1f}s fs={fs_runtime[-1]:.1f}s",
            file=sys.stderr,
        )

    payload = {
        "datasets": list(datasets),
        "errors": errors,
        "mvg_fe": mvg_fe,
        "mvg_clf": mvg_clf,
        "fs_runtime": fs_runtime,
        "settings": settings,
    }
    cache_store("table3", payload, rc)
    return payload


def render_table3(payload: dict) -> str:
    """Format the sweep as the paper's Table 3."""
    datasets = payload["datasets"]
    errors = payload["errors"]
    headers = (
        ["Dataset"]
        + list(METHODS)
        + ["MVG FE(s)", "MVG Clf(s)", "MVG Sum(s)", "FS(s)"]
    )
    rows = []
    for i, name in enumerate(datasets):
        mvg_total = payload["mvg_fe"][i] + payload["mvg_clf"][i]
        rows.append(
            [name]
            + [errors[method][i] for method in METHODS]
            + [
                payload["mvg_fe"][i],
                payload["mvg_clf"][i],
                mvg_total,
                payload["fs_runtime"][i],
            ]
        )
    table = format_table(
        headers, rows, title="Table 3: benchmark vs state-of-the-art (error rates, runtime)"
    )

    lines = ["", "Number of best (including ties):"]
    error_matrix = np.array([errors[method] for method in METHODS])
    best = error_matrix.min(axis=0)
    for row, method in enumerate(METHODS):
        count = int(np.sum(error_matrix[row] == best))
        lines.append(f"  {method}: {count}")
    lines.append("")
    lines.append("Wilcoxon vs MVG (p-values):")
    for method in BASELINES:
        comparison = pairwise_comparison(
            "MVG", np.asarray(errors["MVG"]), method, np.asarray(errors[method])
        )
        lines.append(f"  {comparison.summary()}")
    mvg_total = float(np.sum(payload["mvg_fe"]) + np.sum(payload["mvg_clf"]))
    fs_total = float(np.sum(payload["fs_runtime"]))
    faster = int(
        np.sum(
            np.asarray(payload["mvg_fe"]) + np.asarray(payload["mvg_clf"])
            < np.asarray(payload["fs_runtime"])
        )
    )
    lines.append("")
    lines.append(
        f"Total runtime: MVG {mvg_total:.1f}s vs FS {fs_total:.1f}s "
        f"({fs_total / max(mvg_total, 1e-9):.1f}x); MVG faster on "
        f"{faster}/{len(datasets)} datasets"
    )
    return table + "\n" + "\n".join(lines)


def main() -> None:
    """CLI: run/load the sweep and print the rendered table."""
    force = "--force" in sys.argv
    payload = run_table3(force=force)
    print(render_table3(payload))


if __name__ == "__main__":
    main()
