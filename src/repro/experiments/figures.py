"""Data series behind Figures 2-5 and 8-9.

No plotting libraries are available offline, so each harness prints the
exact data a plot would show:

* Figure 2 — per-class motif probability boxplot statistics on the
  ArrowHead training set (connected and disconnected 4-motifs);
* Figures 3-5 — per-dataset error-rate pairs (the scatter points) with
  win counts for each panel, derived from the Table 2 sweep;
* Figure 8 — scatter pairs MVG vs each of the five baselines (Table 3);
* Figure 9 — log10 runtime pairs FS vs MVG with the 10x/100x speedup
  counts.

Run with ``python -m repro.experiments.figures fig2`` (or fig3..fig9).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api.config import RunConfig
from repro.data.archive import load_archive_dataset
from repro.experiments.reporting import format_table
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import BASELINES, run_table3
from repro.graph.motifs import CONNECTED_MOTIFS_4, DISCONNECTED_MOTIFS_4, count_motifs
from repro.graph.visibility import visibility_graph
from repro.stats.comparison import win_counts


def figure2_data(dataset: str = "ArrowHead") -> dict[str, dict[int, dict[str, list[float]]]]:
    """Per-class motif probability samples for the Figure 2 boxplots.

    Returns ``{"connected": {class: {motif: [probabilities...]}},
    "disconnected": ...}`` computed from VGs of the training series.
    """
    split = load_archive_dataset(dataset, orientation="table2")
    out: dict[str, dict[int, dict[str, list[float]]]] = {
        "connected": {},
        "disconnected": {},
    }
    for series, label in zip(split.train.X, split.train.y):
        graph = visibility_graph(series)
        probabilities = count_motifs(graph).probability_distributions()
        label = int(label)
        for kind, keys in (
            ("connected", CONNECTED_MOTIFS_4),
            ("disconnected", DISCONNECTED_MOTIFS_4),
        ):
            per_class = out[kind].setdefault(label, {key: [] for key in keys})
            for key in keys:
                per_class[key].append(probabilities[key])
    return out


def render_figure2(dataset: str = "ArrowHead") -> str:
    """Boxplot five-number summaries per class and motif."""
    data = figure2_data(dataset)
    blocks = []
    for kind in ("connected", "disconnected"):
        rows = []
        for label in sorted(data[kind]):
            for motif, values in data[kind][label].items():
                quartiles = np.percentile(values, [0, 25, 50, 75, 100])
                rows.append(
                    [f"class {label}", motif.upper()] + [float(q) for q in quartiles]
                )
        blocks.append(
            format_table(
                ["Class", "Motif", "min", "q1", "median", "q3", "max"],
                rows,
                title=f"Figure 2 ({kind} 4-motifs, {dataset} train set)",
            )
        )
    return "\n\n".join(blocks)


def _scatter_block(
    title: str, x_name: str, y_name: str, x: list[float], y: list[float], datasets: list[str]
) -> str:
    """One scatter panel: the points plus the win summary."""
    x_wins, ties, y_wins = win_counts(np.asarray(x), np.asarray(y))
    rows = [[name, a, b] for name, a, b in zip(datasets, x, y)]
    table = format_table(["Dataset", x_name, y_name], rows, title=title)
    return (
        table
        + f"\nwins: {x_name}={x_wins}, ties={ties}, {y_name}={y_wins}\n"
    )


#: Panels of Figures 3, 4 and 5 as (title, x column, y column) triples.
FIGURE_PANELS: dict[str, tuple[tuple[str, str, str], ...]] = {
    "fig3": (
        ("HVG MPDs vs HVG All", "A", "B"),
        ("VG MPDs vs VG All", "C", "D"),
    ),
    "fig4": (
        ("HVG All vs VG All", "B", "D"),
        ("HVG All vs UVG", "B", "E"),
        ("VG All vs UVG", "D", "E"),
    ),
    "fig5": (
        ("UVG vs AMVG", "E", "F"),
        ("AMVG vs MVG", "F", "G"),
        ("UVG vs MVG", "E", "G"),
    ),
}


def render_scatter_figure(
    figure: str, force: bool = False, config: RunConfig | None = None
) -> str:
    """Figures 3-5 from the Table 2 sweep."""
    payload = run_table2(force=force, config=config)
    datasets = payload["datasets"]
    errors = payload["errors"]
    blocks = [
        _scatter_block(
            f"{figure.upper()}: {title}",
            x_col,
            y_col,
            errors[x_col],
            errors[y_col],
            datasets,
        )
        for title, x_col, y_col in FIGURE_PANELS[figure]
    ]
    return "\n".join(blocks)


def render_figure8(force: bool = False, config: RunConfig | None = None) -> str:
    """Figure 8: MVG error vs each baseline's error."""
    payload = run_table3(force=force, config=config)
    datasets = payload["datasets"]
    errors = payload["errors"]
    blocks = [
        _scatter_block(
            f"FIG8: {method} vs MVG", method, "MVG", errors[method], errors["MVG"], datasets
        )
        for method in BASELINES
    ]
    return "\n".join(blocks)


def render_figure9(force: bool = False, config: RunConfig | None = None) -> str:
    """Figure 9: log10 runtime FS vs MVG."""
    payload = run_table3(force=force, config=config)
    datasets = payload["datasets"]
    mvg = np.asarray(payload["mvg_fe"]) + np.asarray(payload["mvg_clf"])
    fs = np.asarray(payload["fs_runtime"])
    rows = [
        [name, float(np.log10(max(f, 1e-6))), float(np.log10(max(m, 1e-6)))]
        for name, f, m in zip(datasets, fs, mvg)
    ]
    table = format_table(
        ["Dataset", "log10 FS(s)", "log10 MVG(s)"], rows, title="Figure 9: runtime FS vs MVG"
    )
    ratio = fs / np.maximum(mvg, 1e-9)
    summary = (
        f"\nMVG faster on {int(np.sum(ratio > 1))}/{len(datasets)} datasets; "
        f">=10x on {int(np.sum(ratio >= 10))}; >=100x on {int(np.sum(ratio >= 100))}; "
        f"total speedup {float(fs.sum() / max(mvg.sum(), 1e-9)):.1f}x"
    )
    return table + summary


def render(figure: str, force: bool = False, config: RunConfig | None = None) -> str:
    """Render any figure by name (``fig2`` .. ``fig9``)."""
    if figure == "fig2":
        return render_figure2()
    if figure in FIGURE_PANELS:
        return render_scatter_figure(figure, force=force, config=config)
    if figure == "fig8":
        return render_figure8(force=force, config=config)
    if figure == "fig9":
        return render_figure9(force=force, config=config)
    raise ValueError(
        f"unknown figure {figure!r}; expected fig2, fig3, fig4, fig5, fig8 or fig9 "
        "(fig6/fig7 live in repro.experiments.cd_diagrams, fig10 in case_study)"
    )


def main() -> None:
    """CLI: render the figures named in argv (fig2 by default)."""
    args = [arg for arg in sys.argv[1:] if not arg.startswith("--")]
    force = "--force" in sys.argv
    figures = args or ["fig2"]
    for figure in figures:
        print(render(figure, force=force))
        print()


if __name__ == "__main__":
    main()
