"""Shared experiment plumbing: timing, dataset selection and result caching.

Environment knobs (all optional):

``REPRO_DATASETS``
    Comma-separated dataset names; restricts every sweep.
``REPRO_MAX_DATASETS``
    Positive integer; keep only the first N archive datasets (quick
    runs).  Invalid values fail fast with a clear message.
``REPRO_RESULTS_DIR``
    Where JSON result caches are written (default ``./results``).  The
    per-series feature cache lives in its ``feature_cache/``
    subdirectory (see :mod:`repro.core.batch`).
``REPRO_FULL_GRID``
    When set (non-empty), use the paper's full XGBoost grid.
``REPRO_JOBS``
    Positive integer; worker processes for batched feature extraction
    (default 1).  The ``--jobs`` CLI flag of ``python -m repro`` sets
    this for every sweep it dispatches.

Corrupt or truncated JSON result caches are treated as cache misses
(with a warning) rather than crashing a sweep mid-run.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.batch import BatchFeatureExtractor, env_positive_int
from repro.core.config import FeatureConfig
from repro.core.pipeline import default_param_grid
from repro.data.archive import archive_dataset_names, load_archive_dataset
from repro.data.dataset import TrainTestSplit
from repro.ml.base import BaseEstimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import error_rate
from repro.ml.model_selection import GridSearchCV
from repro.ml.resample import RandomOverSampler


@dataclass
class EvaluationResult:
    """Outcome of one (dataset, method) evaluation."""

    dataset: str
    method: str
    error: float
    fit_seconds: float = 0.0
    predict_seconds: float = 0.0
    feature_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end runtime (feature extraction + fit + predict)."""
        return self.feature_seconds + self.fit_seconds + self.predict_seconds


def selected_datasets() -> tuple[str, ...]:
    """Archive dataset names honouring the selection env knobs."""
    names = archive_dataset_names()
    env = os.environ.get("REPRO_DATASETS")
    if env:
        requested = [name.strip() for name in env.split(",") if name.strip()]
        if not requested:
            raise ValueError(
                f"REPRO_DATASETS is set but names no datasets: {env!r}"
            )
        unknown = sorted(set(requested) - set(names))
        if unknown:
            raise ValueError(f"unknown datasets in REPRO_DATASETS: {unknown}")
        names = tuple(name for name in names if name in requested)
    cap = env_positive_int("REPRO_MAX_DATASETS")
    if cap is not None:
        names = names[:cap]
    return names


def active_param_grid(n_classes: int | None = None) -> dict[str, list[Any]]:
    """The XGBoost grid for sweeps (paper grid iff REPRO_FULL_GRID set).

    Many-class problems fit ``n_classes`` trees per boosting round, so
    their grid is trimmed to keep sweep runtime bounded (documented
    deviation; set REPRO_FULL_GRID to override).
    """
    if os.environ.get("REPRO_FULL_GRID"):
        return default_param_grid(full=True)
    grid = default_param_grid()
    if n_classes is not None and n_classes > 10:
        grid = {"learning_rate": [0.3], "n_estimators": [25, 50], "max_depth": [4]}
    return grid


def results_dir() -> Path:
    """Directory for JSON result caches (created on demand).

    A set-but-blank ``REPRO_RESULTS_DIR`` counts as unset — otherwise
    ``Path("")`` would silently resolve to the current directory and
    caches (including ``feature_cache/``) would be sprayed into the CWD.
    """
    raw = os.environ.get("REPRO_RESULTS_DIR")
    path = Path(raw) if raw and raw.strip() else Path("results")
    path.mkdir(parents=True, exist_ok=True)
    return path


def cache_load(name: str) -> dict | None:
    """Load a cached result blob, or None when absent or unreadable.

    A corrupt or truncated cache (interrupted write, disk trouble) is
    reported as a warning and treated as a miss, so the sweep recomputes
    instead of crashing; the next :func:`cache_store` overwrites it.
    """
    path = results_dir() / f"{name}.json"
    if not path.is_file():
        return None
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        warnings.warn(
            f"ignoring unreadable result cache {path}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if not isinstance(payload, dict):
        warnings.warn(
            f"ignoring result cache {path}: expected a JSON object, "
            f"got {type(payload).__name__}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return payload


def cache_store(name: str, payload: dict) -> Path:
    """Persist a result blob; returns the written path."""
    path = results_dir() / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return path


def evaluate_mvg(
    split: TrainTestSplit,
    config: FeatureConfig,
    param_grid: dict[str, list[Any]] | None = None,
    random_state: int = 0,
    oversample: bool = True,
    precomputed: tuple[np.ndarray, np.ndarray] | None = None,
    n_jobs: int | None = None,
    feature_cache: bool = True,
) -> EvaluationResult:
    """Evaluate the MVG pipeline on one split, timing the feature
    extraction and classification phases separately (the FE/Clf columns
    of Table 3).

    ``precomputed`` takes ``(train_features, test_features)`` already
    restricted to ``config``'s columns; sweeps use it to extract the full
    feature matrix once and slice per heuristic column.

    Extraction goes through :class:`~repro.core.batch.BatchFeatureExtractor`:
    ``n_jobs`` (defaulting to the ``REPRO_JOBS`` env knob) fans the
    per-series work over worker processes, and ``feature_cache`` controls
    the on-disk per-series cache under ``REPRO_RESULTS_DIR`` — on a cache
    hit ``feature_seconds`` reports the (near-zero) load time, which is
    the real cost the sweep paid.
    """
    if precomputed is not None:
        train_features, test_features = precomputed
        feature_seconds = 0.0
    else:
        extractor = BatchFeatureExtractor(config, n_jobs=n_jobs, cache=feature_cache)
        t0 = time.perf_counter()
        train_features = extractor.transform(split.train.X)
        test_features = extractor.transform(split.test.X)
        feature_seconds = time.perf_counter() - t0

    y_train = split.train.y
    if oversample:
        train_features, y_train = RandomOverSampler(random_state).fit_resample(
            train_features, y_train
        )
    base = GradientBoostingClassifier(
        subsample=0.5, colsample_bytree=0.5, random_state=random_state
    )
    model: BaseEstimator
    if param_grid:
        model = GridSearchCV(
            base, param_grid, cv=3, scoring="neg_log_loss", random_state=random_state
        )
    else:
        model = base
    t0 = time.perf_counter()
    model.fit(train_features, y_train)
    fit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    predictions = model.predict(test_features)
    predict_seconds = time.perf_counter() - t0

    return EvaluationResult(
        dataset=split.name,
        method="MVG",
        error=error_rate(split.test.y, predictions),
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
        feature_seconds=feature_seconds,
        extra={"n_features": train_features.shape[1]},
    )


def evaluate_baseline(
    split: TrainTestSplit,
    method_name: str,
    factory: Callable[[], BaseEstimator],
) -> EvaluationResult:
    """Fit/predict one baseline classifier on a split with timing."""
    model = factory()
    t0 = time.perf_counter()
    model.fit(split.train.X, split.train.y)
    fit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    predictions = model.predict(split.test.X)
    predict_seconds = time.perf_counter() - t0
    return EvaluationResult(
        dataset=split.name,
        method=method_name,
        error=error_rate(split.test.y, predictions),
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
    )


def mean_error_over_repeats(
    run: Callable[[int], float], n_repeats: int, base_seed: int = 0
) -> float:
    """Average a stochastic evaluation over ``n_repeats`` seeds (the paper
    averages five repetitions)."""
    return float(np.mean([run(base_seed + i) for i in range(n_repeats)]))


def result_rows_to_json(results: list[EvaluationResult]) -> list[dict]:
    """Serialisable form of a result list."""
    return [asdict(result) for result in results]
