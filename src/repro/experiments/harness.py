"""Shared experiment plumbing: timing, dataset selection and result caching.

Every knob-dependent helper takes an optional
:class:`~repro.api.config.RunConfig`; when omitted, the deprecated
``REPRO_*`` environment variables are consulted as a back-compat shim
(:meth:`RunConfig.from_env`), emitting one :class:`DeprecationWarning`
per process:

``REPRO_DATASETS``      → ``RunConfig.datasets``
``REPRO_MAX_DATASETS``  → ``RunConfig.max_datasets``
``REPRO_RESULTS_DIR``   → ``RunConfig.results_dir``
``REPRO_FULL_GRID``     → ``RunConfig.full_grid``
``REPRO_JOBS``          → ``RunConfig.jobs``

Corrupt or truncated JSON result caches are treated as cache misses
(with a warning) rather than crashing a sweep mid-run.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.api.config import RunConfig, active_run_config
from repro.core.batch import BatchFeatureExtractor
from repro.core.config import FeatureConfig
from repro.core.pipeline import default_param_grid
from repro.data.archive import archive_dataset_names, load_archive_dataset
from repro.data.dataset import TrainTestSplit
from repro.ioutil import atomic_write_json
from repro.ml.base import BaseEstimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import error_rate
from repro.ml.model_selection import GridSearchCV
from repro.ml.resample import RandomOverSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.ledger import Ledger


@dataclass
class EvaluationResult:
    """Outcome of one (dataset, method) evaluation."""

    dataset: str
    method: str
    error: float
    fit_seconds: float = 0.0
    predict_seconds: float = 0.0
    feature_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end runtime (feature extraction + fit + predict)."""
        return self.feature_seconds + self.fit_seconds + self.predict_seconds


def selected_datasets(config: RunConfig | None = None) -> tuple[str, ...]:
    """Archive dataset names honouring the run config's selection
    (falling back to the ``REPRO_DATASETS`` / ``REPRO_MAX_DATASETS``
    env shim when no config is given)."""
    rc = active_run_config(config)
    names = archive_dataset_names()
    if rc.datasets is not None:
        requested = [name.strip() for name in rc.datasets if name and name.strip()]
        if not requested:
            raise ValueError(
                f"{rc.datasets_label} is set but names no datasets: {rc.datasets!r}"
            )
        unknown = sorted(set(requested) - set(names))
        if unknown:
            raise ValueError(f"unknown datasets in {rc.datasets_label}: {unknown}")
        names = tuple(name for name in names if name in requested)
    if rc.max_datasets is not None:
        names = names[: rc.max_datasets]
    return names


def active_param_grid(
    n_classes: int | None = None, config: RunConfig | None = None
) -> dict[str, list[Any]]:
    """The XGBoost grid for sweeps (paper grid iff ``full_grid`` is set
    on the run config, or ``REPRO_FULL_GRID`` under the env shim).

    Many-class problems fit ``n_classes`` trees per boosting round, so
    their grid is trimmed to keep sweep runtime bounded (documented
    deviation; set ``full_grid`` to override).
    """
    rc = active_run_config(config)
    if rc.full_grid:
        return default_param_grid(full=True)
    grid = default_param_grid()
    if n_classes is not None and n_classes > 10:
        grid = {"learning_rate": [0.3], "n_estimators": [25, 50], "max_depth": [4]}
    return grid


def results_dir(config: RunConfig | None = None) -> Path:
    """Directory for JSON result caches (created on demand).

    A set-but-blank ``results_dir`` / ``REPRO_RESULTS_DIR`` counts as
    unset — otherwise ``Path("")`` would silently resolve to the current
    directory and caches (including ``feature_cache/``) would be sprayed
    into the CWD.
    """
    path = active_run_config(config).resolved_results_dir()
    path.mkdir(parents=True, exist_ok=True)
    return path


def ledger_for(config: RunConfig | None = None, create: bool = True) -> "Ledger | None":
    """The results-directory ledger, or ``None`` when unavailable.

    Callers own the handle (``close()`` it); a corrupt or unopenable
    ledger degrades to ``None`` with a warning — sweeps must keep
    working without provenance.
    """
    from repro.ledger import Ledger

    return Ledger.attach(results_dir(config) / "ledger.db", create=create)


def cache_load(name: str, config: RunConfig | None = None) -> dict | None:
    """Load a cached result blob, or None when absent or unreadable.

    The ledger is the primary source: the most recent sweep recorded
    under ``name`` is returned payload-verbatim (``cd_diagrams``,
    ``summary`` and every sweep read cross-run results this way instead
    of re-walking JSON).  The legacy ``results/<name>.json`` blob is the
    fallback for results directories predating the ledger.

    A corrupt or truncated cache (interrupted write, disk trouble) is
    reported as a warning and treated as a miss, so the sweep recomputes
    instead of crashing; the next :func:`cache_store` overwrites it.
    """
    from repro.ledger import LedgerError

    ledger = ledger_for(config, create=False)
    if ledger is not None:
        try:
            payload = ledger.sweep_payload(name)
        except LedgerError as exc:
            warnings.warn(
                f"ignoring unreadable ledger {ledger.path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            payload = None
        finally:
            ledger.close()
        if payload is not None:
            return payload
    path = results_dir(config) / f"{name}.json"
    if not path.is_file():
        return None
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        warnings.warn(
            f"ignoring unreadable result cache {path}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if not isinstance(payload, dict):
        warnings.warn(
            f"ignoring result cache {path}: expected a JSON object, "
            f"got {type(payload).__name__}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return payload


def cache_matches(
    cached: dict | None, datasets: tuple[str, ...], settings: dict[str, Any]
) -> bool:
    """Whether a cached sweep payload covers the requested run.

    Compares the dataset list and the sweep settings (seed, grid
    choice…) so a cache computed under ``--seed 0`` is never served for
    a ``--seed 7`` run.  Legacy caches predating the ``settings`` key
    are treated as having been produced under the historical defaults
    (seed 0, trimmed grid).
    """
    if cached is None or tuple(cached.get("datasets", ())) != datasets:
        return False
    defaults = {"seed": 0, "full_grid": False}
    stored = cached.get("settings") or {}
    return all(
        stored.get(key, defaults.get(key)) == value
        for key, value in settings.items()
    )


def cache_store(name: str, payload: dict, config: RunConfig | None = None) -> Path:
    """Persist a result blob (atomically); returns the written path.

    Concurrent sweeps sharing a results directory can therefore never
    observe each other's half-written caches — they see the old blob or
    the new one, nothing in between.

    The sweep is also recorded in the results-directory ledger (one
    ``sweep`` row carrying the payload, plus one ``eval`` row per
    (dataset, method) cell), so cross-run queries — best config per
    dataset across sweeps under different seeds — survive the JSON
    file's last-writer-wins overwrite.  Ledger trouble degrades to a
    warning; the sweep itself has already succeeded.
    """
    path = results_dir(config) / f"{name}.json"
    written = atomic_write_json(path, payload, indent=1, sort_keys=True)
    ledger = ledger_for(config)
    if ledger is not None:
        try:
            ledger.record_sweep(name, payload, artifact=str(written))
        finally:
            ledger.close()
    return written


def batch_extractor(
    config: FeatureConfig,
    run_config: RunConfig | None = None,
    n_jobs: int | None = None,
    cache: bool = True,
) -> BatchFeatureExtractor:
    """A :class:`BatchFeatureExtractor` wired to the run config.

    ``run_config`` supplies the worker count (unless ``n_jobs`` is
    explicit), whether the feature cache may be used, and the cache
    directory; with no config the extractor falls back to the
    ``REPRO_JOBS`` / ``REPRO_RESULTS_DIR`` env shim it always supported.
    """
    if run_config is None:
        return BatchFeatureExtractor(config, n_jobs=n_jobs, cache=cache)
    return BatchFeatureExtractor(
        config,
        n_jobs=run_config.jobs if n_jobs is None else n_jobs,
        cache=cache and run_config.feature_cache,
        cache_dir=run_config.feature_cache_dir(),
    )


def evaluate_mvg(
    split: TrainTestSplit,
    config: FeatureConfig,
    param_grid: dict[str, list[Any]] | None = None,
    random_state: int = 0,
    oversample: bool = True,
    precomputed: tuple[np.ndarray, np.ndarray] | None = None,
    n_jobs: int | None = None,
    feature_cache: bool = True,
    run_config: RunConfig | None = None,
) -> EvaluationResult:
    """Evaluate the MVG pipeline on one split, timing the feature
    extraction and classification phases separately (the FE/Clf columns
    of Table 3).

    ``precomputed`` takes ``(train_features, test_features)`` already
    restricted to ``config``'s columns; sweeps use it to extract the full
    feature matrix once and slice per heuristic column.

    Extraction goes through :class:`~repro.core.batch.BatchFeatureExtractor`:
    ``n_jobs`` (defaulting to the ``REPRO_JOBS`` env knob) fans the
    per-series work over worker processes, and ``feature_cache`` controls
    the on-disk per-series cache under ``REPRO_RESULTS_DIR`` — on a cache
    hit ``feature_seconds`` reports the (near-zero) load time, which is
    the real cost the sweep paid.
    """
    if precomputed is not None:
        train_features, test_features = precomputed
        feature_seconds = 0.0
    else:
        extractor = batch_extractor(
            config, run_config, n_jobs=n_jobs, cache=feature_cache
        )
        t0 = time.perf_counter()
        train_features = extractor.transform(split.train.X)
        test_features = extractor.transform(split.test.X)
        feature_seconds = time.perf_counter() - t0

    y_train = split.train.y
    if oversample:
        train_features, y_train = RandomOverSampler(random_state).fit_resample(
            train_features, y_train
        )
    base = GradientBoostingClassifier(
        subsample=0.5, colsample_bytree=0.5, random_state=random_state
    )
    model: BaseEstimator
    if param_grid:
        model = GridSearchCV(
            base, param_grid, cv=3, scoring="neg_log_loss", random_state=random_state
        )
    else:
        model = base
    t0 = time.perf_counter()
    model.fit(train_features, y_train)
    fit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    predictions = model.predict(test_features)
    predict_seconds = time.perf_counter() - t0

    return EvaluationResult(
        dataset=split.name,
        method="MVG",
        error=error_rate(split.test.y, predictions),
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
        feature_seconds=feature_seconds,
        extra={"n_features": train_features.shape[1]},
    )


def evaluate_baseline(
    split: TrainTestSplit,
    method_name: str,
    factory: Callable[[], BaseEstimator],
) -> EvaluationResult:
    """Fit/predict one baseline classifier on a split with timing."""
    model = factory()
    t0 = time.perf_counter()
    model.fit(split.train.X, split.train.y)
    fit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    predictions = model.predict(split.test.X)
    predict_seconds = time.perf_counter() - t0
    return EvaluationResult(
        dataset=split.name,
        method=method_name,
        error=error_rate(split.test.y, predictions),
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
    )


def mean_error_over_repeats(
    run: Callable[[int], float], n_repeats: int, base_seed: int = 0
) -> float:
    """Average a stochastic evaluation over ``n_repeats`` seeds (the paper
    averages five repetitions)."""
    return float(np.mean([run(base_seed + i) for i in range(n_repeats)]))


def result_rows_to_json(results: list[EvaluationResult]) -> list[dict]:
    """Serialisable form of a result list."""
    return [asdict(result) for result in results]
