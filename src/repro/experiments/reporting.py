"""Plain-text table rendering shared by the experiment CLIs and benches."""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    """Render one table cell (floats with three decimals)."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def format_cd_diagram(
    names: Sequence[str], ranks: Sequence[float], cd: float, groups: Sequence[tuple[int, ...]]
) -> str:
    """ASCII rendition of a critical-difference diagram: ranked methods
    with the insignificance groups spelled out."""
    order = sorted(range(len(names)), key=lambda i: ranks[i])
    lines = [f"CD = {cd:.4f} (alpha = 0.05)"]
    for position, idx in enumerate(order, start=1):
        lines.append(f"  {position}. {names[idx]:<24s} avg rank {ranks[idx]:.4f}")
    for group in groups:
        if len(group) > 1:
            members = ", ".join(names[i] for i in group)
            lines.append(f"  not significantly different: {members}")
    return "\n".join(lines)
