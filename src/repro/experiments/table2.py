"""Table 2: heuristic validation — columns A-G vs 1NN-ED and 1NN-DTW.

For every archive dataset this sweep evaluates the seven feature-set
combinations of Section 4.2 (UVG/AMVG/MVG x HVG/VG/both x MPDs/all) with
the XGBoost-style pipeline, plus the two distance baselines, and prints
the paper's footer: win counts and Wilcoxon p-values for the nine
comparison pairs.

Run with ``python -m repro.experiments.table2``; results are cached in
``results/table2.json`` for the figure harnesses.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api.config import RunConfig, active_run_config
from repro.baselines.nn import NearestNeighborDTW, NearestNeighborEuclidean
from repro.core.config import HEURISTIC_COLUMNS
from repro.core.features import feature_mask
from repro.data.archive import load_archive_dataset
from repro.experiments.harness import (
    active_param_grid,
    batch_extractor,
    cache_load,
    cache_matches,
    cache_store,
    evaluate_baseline,
    evaluate_mvg,
    selected_datasets,
)
from repro.experiments.reporting import format_table
from repro.stats.comparison import pairwise_comparison

#: The footer comparison pairs of Table 2 (challenger beats reference?).
COMPARISON_PAIRS: tuple[tuple[str, str], ...] = (
    ("G", "1NN-ED"),
    ("G", "1NN-DTW"),
    ("B", "A"),
    ("D", "B"),
    ("D", "C"),
    ("E", "D"),
    ("F", "E"),
    ("G", "F"),
    ("G", "E"),
)

METHODS: tuple[str, ...] = ("1NN-ED", "1NN-DTW") + tuple(HEURISTIC_COLUMNS)


def run_table2(
    force: bool = False,
    random_state: int | None = None,
    config: RunConfig | None = None,
) -> dict:
    """Run (or load from cache) the full Table 2 sweep.

    ``config`` carries dataset selection, worker count, results dir and
    grid choice (env shim when omitted); ``force``/``random_state``
    default to the config's ``force``/``seed``.

    Returns ``{"datasets": [...], "errors": {method: [per-dataset error]}}``.
    """
    rc = active_run_config(config)
    force = force or rc.force
    random_state = rc.seed if random_state is None else random_state
    datasets = selected_datasets(rc)
    settings = {"seed": random_state, "full_grid": rc.full_grid}
    cached = cache_load("table2", rc)
    if not force and cache_matches(cached, datasets, settings):
        return cached

    errors: dict[str, list[float]] = {method: [] for method in METHODS}
    full_config = HEURISTIC_COLUMNS["G"]
    for name in datasets:
        split = load_archive_dataset(name, orientation="table2")
        grid = active_param_grid(split.train.n_classes, rc)
        errors["1NN-ED"].append(
            evaluate_baseline(split, "1NN-ED", NearestNeighborEuclidean).error
        )
        errors["1NN-DTW"].append(
            evaluate_baseline(
                split, "1NN-DTW", lambda: NearestNeighborDTW(window=0.1)
            ).error
        )
        # Extract the full (column G) feature matrix once; every other
        # heuristic column is a subset of its columns.  The batch
        # extractor honours the config's worker count (``--jobs``) and
        # reuses the on-disk feature cache across re-runs.
        extractor = batch_extractor(full_config, rc)
        train_full = extractor.transform(split.train.X)
        test_full = extractor.transform(split.test.X)
        names = extractor.feature_names_
        for column, column_config in HEURISTIC_COLUMNS.items():
            mask = feature_mask(names, column_config)
            result = evaluate_mvg(
                split,
                column_config,
                param_grid=grid,
                random_state=random_state,
                precomputed=(train_full[:, mask], test_full[:, mask]),
            )
            errors[column].append(result.error)
        print(
            f"[table2] {name}: "
            + " ".join(f"{m}={errors[m][-1]:.3f}" for m in METHODS),
            file=sys.stderr,
        )

    payload = {"datasets": list(datasets), "errors": errors, "settings": settings}
    cache_store("table2", payload, rc)
    return payload


def render_table2(payload: dict) -> str:
    """Format the sweep as the paper's Table 2 (rows + comparison footer)."""
    datasets = payload["datasets"]
    errors = payload["errors"]
    headers = ["Dataset"] + list(METHODS)
    rows = [
        [name] + [errors[method][i] for method in METHODS]
        for i, name in enumerate(datasets)
    ]
    table = format_table(headers, rows, title="Table 2: heuristic validation (error rates)")

    footer_lines = ["", "Comparisons (challenger vs reference, wins / ties / losses, Wilcoxon p):"]
    for challenger, reference in COMPARISON_PAIRS:
        comparison = pairwise_comparison(
            challenger,
            np.asarray(errors[challenger]),
            reference,
            np.asarray(errors[reference]),
        )
        footer_lines.append("  " + comparison.summary())
    return table + "\n" + "\n".join(footer_lines)


def main() -> None:
    """CLI: run/load the sweep and print the rendered table."""
    force = "--force" in sys.argv
    payload = run_table2(force=force)
    print(render_table2(payload))


if __name__ == "__main__":
    main()
