"""Generate the measured sections of EXPERIMENTS.md from cached results.

After the sweeps have populated ``results/*.json``, running

    python -m repro.experiments.summary

rewrites EXPERIMENTS.md with a paper-vs-measured record for every table
and figure: win counts, Wilcoxon p-values, CD diagram ranks and the
runtime comparison, each annotated with the paper's corresponding
numbers and whether the qualitative conclusion is reproduced.

Reads go through :func:`repro.experiments.harness.cache_load`, which is
ledger-first (:mod:`repro.ledger`) with the legacy JSON files as
fallback; the closing "Run ledger" section queries the ledger directly
for cross-seed coverage and best-configuration-per-dataset.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.api.config import RunConfig
from repro.experiments.harness import cache_load, ledger_for
from repro.ioutil import atomic_write_text
from repro.stats.comparison import pairwise_comparison
from repro.stats.friedman import friedman_test
from repro.stats.nemenyi import critical_difference

#: Paper's Table 2 footer: (challenger, reference) -> (wins, p-value).
PAPER_TABLE2 = {
    ("G", "1NN-ED"): (26, 0.01),
    ("G", "1NN-DTW"): (23, 0.1638),
    ("B", "A"): (32, 9.48e-7),
    ("D", "B"): (30, 3.09e-3),
    ("D", "C"): (29, 9.56e-5),
    ("E", "D"): (27, 5.01e-3),
    ("F", "E"): (19, 0.8623),
    ("G", "F"): (29, 1.72e-4),
    ("G", "E"): (30, 8.74e-4),
}

#: Paper's Table 3 footer: method -> (best count, Wilcoxon p vs MVG).
PAPER_TABLE3 = {
    "1NN-ED": (1, 0.0023),
    "1NN-DTW": (2, 0.0044),
    "LS": (12, 0.3421),
    "FS": (3, 0.0005),
    "SAX-VSM": (10, 0.5767),
    "MVG": (16, None),
}


def _verdict(matches: bool) -> str:
    return "reproduced" if matches else "DEVIATION"


def table2_section(config: RunConfig | None = None) -> list[str]:
    """Markdown lines for the Table 2 paper-vs-measured block."""
    payload = cache_load("table2", config)
    if payload is None:
        return ["*(run `python -m repro table2` first)*"]
    errors = {k: np.asarray(v) for k, v in payload["errors"].items()}
    n = len(payload["datasets"])
    lines = [
        f"Measured over {n} surrogate datasets "
        "(wins for the challenger; paper values in parentheses):",
        "",
        "| Comparison | wins (paper) | p (paper) | conclusion |",
        "|---|---|---|---|",
    ]
    for (challenger, reference), (paper_wins, paper_p) in PAPER_TABLE2.items():
        comparison = pairwise_comparison(
            challenger, errors[challenger], reference, errors[reference]
        )
        ours_sig = comparison.wilcoxon.p_value < 0.05
        paper_sig = paper_p < 0.05
        direction_ok = comparison.challenger_wins >= comparison.reference_wins
        paper_direction = paper_wins >= (39 - paper_wins) / 2  # paper always reports winner
        matches = (ours_sig == paper_sig and direction_ok) or (
            not paper_sig and not ours_sig
        )
        del paper_direction
        lines.append(
            f"| {challenger} vs {reference} | "
            f"{comparison.challenger_wins} ({paper_wins}) | "
            f"{comparison.wilcoxon.p_value:.2g} ({paper_p:.2g}) | "
            f"{_verdict(matches)} |"
        )
    return lines


def table3_section(config: RunConfig | None = None) -> list[str]:
    """Markdown lines for the Table 3 paper-vs-measured block."""
    payload = cache_load("table3", config)
    if payload is None:
        return ["*(run `python -m repro table3` first)*"]
    errors = {k: np.asarray(v) for k, v in payload["errors"].items()}
    methods = list(errors)
    matrix = np.stack([errors[m] for m in methods])
    best = matrix.min(axis=0)
    lines = [
        "| Method | best count (paper) | Wilcoxon p vs MVG (paper) |",
        "|---|---|---|",
    ]
    for row, method in enumerate(methods):
        count = int(np.sum(matrix[row] == best))
        paper_best, paper_p = PAPER_TABLE3[method]
        if method == "MVG":
            lines.append(f"| MVG | {count} ({paper_best}) | — |")
            continue
        comparison = pairwise_comparison("MVG", errors["MVG"], method, errors[method])
        lines.append(
            f"| {method} | {count} ({paper_best}) | "
            f"{comparison.wilcoxon.p_value:.2g} ({paper_p:.2g}) |"
        )
    mvg_total = float(np.sum(payload["mvg_fe"]) + np.sum(payload["mvg_clf"]))
    fs_total = float(np.sum(payload["fs_runtime"]))
    faster = int(
        np.sum(
            np.asarray(payload["mvg_fe"]) + np.asarray(payload["mvg_clf"])
            < np.asarray(payload["fs_runtime"])
        )
    )
    lines += [
        "",
        f"Runtime: MVG total {mvg_total:.0f}s vs FS total {fs_total:.0f}s — "
        f"**{fs_total / max(mvg_total, 1e-9):.1f}x** overall speedup, MVG faster on "
        f"{faster}/{len(payload['datasets'])} datasets "
        "(paper: 18x overall, faster on 24/39).",
    ]
    return lines


def cd_section(
    name: str, paper_order: str, config: RunConfig | None = None
) -> list[str]:
    """Markdown lines for one critical-difference figure."""
    payload = cache_load(name, config)
    if payload is None:
        return [f"*(run `python -m repro {name}` first)*"]
    methods = list(payload["errors"])
    matrix = np.column_stack([payload["errors"][m] for m in methods])
    result = friedman_test(matrix)
    cd = critical_difference(len(methods), matrix.shape[0])
    ranked = sorted(zip(methods, result.ranks), key=lambda item: item[1])
    rendered = " < ".join(f"{m} ({r:.2f})" for m, r in ranked)
    return [
        f"Average ranks (lower = better): {rendered}; CD = {cd:.4f}; "
        f"Friedman p = {result.p_value:.2g}.",
        f"Paper's ordering: {paper_order}.",
    ]


HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation, regenerated on the
synthetic UCR-surrogate archive (see DESIGN.md §2 for the substitution
rationale).  Absolute error rates are not comparable — the data differ —
so this file tracks the *shape*: which method wins, significance calls,
orderings and runtime ratios.  Rendered artifacts live in
`results/*.txt`; raw sweeps in `results/*.json`.

Regenerate this file with `python -m repro.experiments.summary` after
running the sweeps (`python -m repro all` or `pytest benchmarks/
--benchmark-only`).
"""

KNOWN_DEVIATIONS = """## Known deviations

* **B vs A / D vs C** (adding non-MPD statistics): the paper finds a
  small but significant gain; on the surrogate archive the effect is
  directionally mixed and insignificant.  Density is mathematically
  redundant with P(M21) and the surrogate classes encode most signal in
  motif space, so the auxiliary statistics have less headroom here.
* **F vs E** (AMVG vs UVG): the paper finds no significant difference;
  the surrogate's approximations denoise more aggressively than real UCR
  data, making AMVG significantly better than UVG.  The paper's key
  claims on the scale axis (MVG > AMVG and MVG > UVG, both significant)
  do reproduce.
* **ECG5000**: the surrogate encodes arrhythmia classes mainly through
  wave *amplitudes*; visibility graphs are affine-invariant, so MVG
  loses badly on this one dataset.  This is precisely the limitation the
  paper concedes in Section 4.7 ("in applications where the absolute
  oscillation is more important, MVG is less likely to detect such
  characteristics") and is kept as an honest illustration of it.
* **G vs 1NN-DTW**: the paper reports statistical parity (p = 0.16); the
  surrogate archive's alignment-breaking augmentation makes MVG
  significantly better than 1NN-DTW.  Same winner, stronger margin.
* **SAX-VSM** is stronger here than in the paper (most best-counts in
  Table 3): several surrogate archetypes encode class identity as local
  texture, which SAX word statistics capture as directly as visibility
  statistics do.  Consistent with the paper insofar as MVG vs SAX-VSM
  was already statistically insignificant there (p = 0.58).
* **Figure 6**: the paper finds XGBoost/RF significantly more accurate
  than SVM; on min-max-scaled surrogate features the three families are
  statistically indistinguishable (our from-scratch SMO SVM with Platt
  scaling holds up better than the paper's SVM baseline did).
* **Figure 7**: the paper finds stacking all families significantly more
  accurate than any single family; here XGBoost-only stacking edges out
  the all-family stack and nothing is significant.  With trimmed
  two-candidate grids (see ``_fig7_families``) the blend has little
  diversity to exploit; the paper's top-5-per-family setting gives
  stacking more room.
* **Runtime magnitude (Table 3 / Figure 9)**: MVG remains faster than FS
  in total and on most datasets, but by ~2x rather than the paper's 18x:
  this repository's FS implementation shares the library's vectorised
  SAX/window substrate, whereas the paper benchmarked the original
  authors' code.  The *direction* (FS slowest, cost exploding with
  series length; MVG scaling gracefully) reproduces.
"""


def ledger_section(config: RunConfig | None = None) -> list[str]:
    """Cross-run record pulled from the results ledger (no JSON reads).

    Unlike the sweep caches — which are last-writer-wins per
    experiment — the ledger keeps every recorded run, so this section
    can report coverage across seeds and the best configuration per
    dataset directly from SQL.
    """
    ledger = ledger_for(config, create=False)
    if ledger is None:
        return [
            "No run ledger yet — sweeps and `run`/`fit` verbs record to",
            "`<results>/ledger.db` as they complete (`repro db stats`).",
        ]
    try:
        stats = ledger.stats()
        best = ledger.query().kind("eval").best_per_dataset()
    finally:
        ledger.close()
    kinds = ", ".join(f"{k}={n}" for k, n in stats["by_kind"].items()) or "none"
    lines = [
        f"Ledger `{stats['path']}` (schema v{stats['schema_version']}): "
        f"{stats['rows']} rows ({kinds}); "
        f"{stats['models'] or 0} methods x {stats['datasets'] or 0} datasets, "
        f"seeds {stats['seeds']}.",
    ]
    if best:
        lines += [
            "",
            "| dataset | best method | seed | error |",
            "|---|---|---|---|",
        ]
        lines += [
            f"| {row.dataset} | {row.model} | {row.seed} | {row.error:.4f} |"
            for row in best
        ]
    return lines


def build(config: RunConfig | None = None) -> str:
    """The complete EXPERIMENTS.md content."""
    sections = [HEADER]
    sections.append("## Table 2 — heuristic validation (E1)\n")
    sections.append("\n".join(table2_section(config)))
    sections.append("\n## Table 3 — accuracy & runtime benchmark (E8)\n")
    sections.append("\n".join(table3_section(config)))
    sections.append("\n## Figure 6 — classifier families (E6)\n")
    sections.append(
        "\n".join(
            cd_section("fig6", "MVG (XGBoost) < MVG (RF) < MVG (SVM), XGBoost/RF "
                       "both significantly better than SVM, CD = 0.5307", config)
        )
    )
    sections.append("\n## Figure 7 — stacked generalization (E7)\n")
    sections.append(
        "\n".join(
            cd_section("fig7", "All < XGBoost ≈ SVM ≈ RF, stacking all families "
                       "significantly best, CD = 0.7511", config)
        )
    )
    sections.append(
        "\n## Figures 2-5, 8-10\n\n"
        "Rendered data (boxplot five-number summaries, scatter pairs with\n"
        "win counts, log-runtime pairs, top-10 feature statistics) are in\n"
        "`results/fig2.txt` ... `results/fig10.txt`, regenerated by\n"
        "`pytest benchmarks/` or `python -m repro all`.  Figures 3-5 are\n"
        "projections of the Table 2 sweep; Figures 8-9 of Table 3.\n"
    )
    sections.append("\n## Run ledger\n")
    sections.append("\n".join(ledger_section(config)))
    sections.append(KNOWN_DEVIATIONS)
    return "\n".join(sections) + "\n"


def main() -> None:
    """CLI: rewrite EXPERIMENTS.md in the working directory."""
    target = Path("EXPERIMENTS.md")
    atomic_write_text(target, build())
    print(f"wrote {target.resolve()}", file=sys.stderr)


if __name__ == "__main__":
    main()
