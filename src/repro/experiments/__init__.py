"""Experiment harnesses regenerating every table and figure of the paper.

Each module is runnable (``python -m repro.experiments.table2`` etc.) and
is also wrapped by a pytest-benchmark target under ``benchmarks/``.
Results are cached as JSON under ``REPRO_RESULTS_DIR`` (default:
``./results``) so the figure harnesses can reuse the table sweeps.
"""

from repro.experiments.harness import (
    EvaluationResult,
    evaluate_baseline,
    evaluate_mvg,
    selected_datasets,
)

__all__ = [
    "EvaluationResult",
    "evaluate_mvg",
    "evaluate_baseline",
    "selected_datasets",
]
