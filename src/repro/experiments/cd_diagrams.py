"""Figures 6 and 7: critical-difference diagrams.

Figure 6 compares the three classifier families (XGBoost, RF, SVM) on
MVG features; Figure 7 compares stacking each single family against
stacking all families.  Both use the Friedman test for overall
significance and the Nemenyi critical difference for the insignificance
groups — with 39 datasets the CDs are 0.5307 (k=3) and 0.7511 (k=4),
exactly the values printed in the paper.

Run with ``python -m repro.experiments.cd_diagrams fig6`` (or fig7).

Results round-trip through :func:`repro.experiments.harness.cache_load`
/ :func:`cache_store`, which record to and read back from the results
ledger (:mod:`repro.ledger`) first, with the flat JSON cache files kept
as a fallback for pre-ledger results directories.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api.config import RunConfig, active_run_config
from repro.core.config import FeatureConfig
from repro.core.stacking_pipeline import default_families
from repro.data.archive import load_archive_dataset
from repro.experiments.harness import (
    batch_extractor,
    cache_load,
    cache_matches,
    cache_store,
    selected_datasets,
)
from repro.experiments.reporting import format_cd_diagram
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import error_rate
from repro.ml.preprocessing import MinMaxScaler
from repro.ml.resample import RandomOverSampler
from repro.ml.stacking import StackingEnsemble
from repro.ml.svm import SVC

FIG6_METHODS: tuple[str, ...] = ("MVG (SVM)", "MVG (RF)", "MVG (XGBoost)")
FIG7_METHODS: tuple[str, ...] = ("SVM", "RF", "XGBoost", "All")


def _features_for(split, random_state: int, config: RunConfig | None = None):
    """Extract + scale + oversample MVG features once per dataset."""
    # Batched extraction: honours the config's worker count and the
    # on-disk feature cache.
    extractor = batch_extractor(FeatureConfig(), config)
    train = extractor.transform(split.train.X)
    test = extractor.transform(split.test.X)
    scaler = MinMaxScaler()
    train = scaler.fit_transform(train)
    test = scaler.transform(test)
    y_train, y_test = split.train.y, split.test.y
    train, y_train = RandomOverSampler(random_state).fit_resample(train, y_train)
    return train, y_train, test, y_test


def run_fig6(
    force: bool = False,
    random_state: int | None = None,
    config: RunConfig | None = None,
) -> dict:
    """Per-dataset errors of the three classifier families on MVG features."""
    rc = active_run_config(config)
    force = force or rc.force
    random_state = rc.seed if random_state is None else random_state
    datasets = selected_datasets(rc)
    settings = {"seed": random_state}
    cached = cache_load("fig6", rc)
    if not force and cache_matches(cached, datasets, settings):
        return cached
    errors: dict[str, list[float]] = {method: [] for method in FIG6_METHODS}
    for name in datasets:
        split = load_archive_dataset(name, orientation="table2")
        train, y_train, test, y_test = _features_for(split, random_state, rc)
        classifiers = {
            "MVG (SVM)": SVC(C=10.0, random_state=random_state),
            "MVG (RF)": RandomForestClassifier(n_estimators=50, random_state=random_state),
            "MVG (XGBoost)": GradientBoostingClassifier(
                n_estimators=50, subsample=0.5, colsample_bytree=0.5,
                random_state=random_state,
            ),
        }
        for method, model in classifiers.items():
            model.fit(train, y_train)
            errors[method].append(error_rate(y_test, model.predict(test)))
        print(
            f"[fig6] {name}: "
            + " ".join(f"{m}={errors[m][-1]:.3f}" for m in FIG6_METHODS),
            file=sys.stderr,
        )
    payload = {"datasets": list(datasets), "errors": errors, "settings": settings}
    cache_store("fig6", payload, rc)
    return payload


def _fig7_families(random_state: int):
    """Trimmed per-family candidate grids (two variants per family).

    The paper stacks the top five variants per family; on this single
    benchmark machine the grids are reduced to keep the 39-dataset x
    4-ensembles sweep tractable (REPRO_FULL_GRID does not affect this —
    edit here to widen).
    """
    families = default_families(random_state)
    trimmed = {
        "xgboost": {"n_estimators": [25, 50]},
        "rf": {"n_estimators": [25, 50]},
        "svm": {"C": [1.0, 10.0]},
    }
    return {
        name: (prototype, trimmed[name])
        for name, (prototype, _) in families.items()
    }


def run_fig7(
    force: bool = False,
    random_state: int | None = None,
    config: RunConfig | None = None,
) -> dict:
    """Per-dataset errors of single-family stacks vs the all-family stack."""
    rc = active_run_config(config)
    force = force or rc.force
    random_state = rc.seed if random_state is None else random_state
    datasets = selected_datasets(rc)
    settings = {"seed": random_state}
    cached = cache_load("fig7", rc)
    if not force and cache_matches(cached, datasets, settings):
        return cached
    errors: dict[str, list[float]] = {method: [] for method in FIG7_METHODS}
    all_families = _fig7_families(random_state)
    single = {"SVM": "svm", "RF": "rf", "XGBoost": "xgboost"}
    for name in datasets:
        split = load_archive_dataset(name, orientation="table2")
        train, y_train, test, y_test = _features_for(split, random_state, rc)
        for method in FIG7_METHODS:
            if method == "All":
                families = all_families
            else:
                key = single[method]
                families = {key: all_families[key]}
            ensemble = StackingEnsemble(
                families=families, top_k=2, cv=3, random_state=random_state
            )
            ensemble.fit(train, y_train)
            errors[method].append(error_rate(y_test, ensemble.predict(test)))
        print(
            f"[fig7] {name}: "
            + " ".join(f"{m}={errors[m][-1]:.3f}" for m in FIG7_METHODS),
            file=sys.stderr,
        )
    payload = {"datasets": list(datasets), "errors": errors, "settings": settings}
    cache_store("fig7", payload, rc)
    return payload


def render_cd(payload: dict, methods: tuple[str, ...], title: str) -> str:
    """Friedman + Nemenyi analysis as an ASCII CD diagram."""
    from repro.stats.friedman import friedman_test
    from repro.stats.nemenyi import critical_difference, nemenyi_groups

    matrix = np.column_stack([payload["errors"][method] for method in methods])
    result = friedman_test(matrix)
    n_datasets = matrix.shape[0]
    cd = critical_difference(len(methods), n_datasets)
    groups = nemenyi_groups(result.ranks, n_datasets)
    header = (
        f"{title}\nFriedman chi2={result.statistic:.3f}, p={result.p_value:.3g} "
        f"over {n_datasets} datasets"
    )
    return header + "\n" + format_cd_diagram(list(methods), result.ranks, cd, groups)


def main() -> None:
    """CLI: render fig6/fig7 named in argv (both by default)."""
    args = [arg for arg in sys.argv[1:] if not arg.startswith("--")]
    force = "--force" in sys.argv
    figures = args or ["fig6", "fig7"]
    for figure in figures:
        if figure == "fig6":
            print(render_cd(run_fig6(force=force), FIG6_METHODS, "Figure 6: classifier families"))
        elif figure == "fig7":
            print(render_cd(run_fig7(force=force), FIG7_METHODS, "Figure 7: stacked generalization"))
        else:
            raise ValueError(f"unknown figure {figure!r}; expected fig6 or fig7")
        print()


if __name__ == "__main__":
    main()
