"""Fast-path visibility-graph construction on array-backed graphs.

The reference builders in :mod:`repro.graph.visibility` are pure Python
and pay per-edge ``set`` bookkeeping through :class:`Graph.add_edge`.
This module is the hot-path replacement used by the feature pipeline:

* :class:`CSRGraph` — an immutable CSR-style (``indptr``/``indices``)
  graph representation assembled from edge arrays with vectorized NumPy
  (no per-edge Python work);
* :func:`hvg_edge_array` — the O(n) HVG stack algorithm run over plain
  arrays, collecting edges into flat buffers instead of adjacency sets;
* :func:`vg_edge_array` — natural-VG divide and conquer driven by a
  Cartesian max-tree built in one O(n) stack pass (no per-interval
  ``argmax``), with the per-pivot max-slope sweeps vectorized through
  ``np.maximum.accumulate`` once an interval is large enough to amortise
  the NumPy call overhead;
* :func:`fast_visibility_graph` / :func:`fast_horizontal_visibility_graph`
  — drop-in builders returning :class:`Graph` objects *identical* to the
  reference builders (property-tested in
  ``tests/test_fast_graph_property.py``), assembled in bulk from the CSR
  arrays rather than edge by edge;
* :func:`visibility_graphs` — the combined per-series builder producing
  the VG and HVG of one series from a single shared Cartesian-tree pass
  (the HVG edges *are* the tree-construction pops/links);
* :func:`visibility_graphs_batch` — batched construction over a
  ``(n_series, n)`` array.

The Cartesian-tree trick: the pivot recursion of
:func:`repro.graph.visibility.visibility_graph_dc` repeatedly takes the
argmax of an interval; those argmaxes are exactly the nodes of the
Cartesian max-tree, which one monotone-stack pass builds in O(n).  The
same pass pops/links are exactly the HVG edges, so VG and HVG of one
series share it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.visibility import _as_float_array

#: Pivot sweeps shorter than this run as plain Python loops; longer ones
#: are vectorized.  Crossover measured on the micro benchmark (NumPy call
#: overhead beats a ~50-iteration interpreter loop).
_VECTOR_SWEEP_MIN = 48

_EMPTY_EDGES = np.empty((0, 2), dtype=np.int64)


class CSRGraph:
    """Immutable undirected graph in CSR (compressed sparse row) form.

    Parameters
    ----------
    n_vertices:
        Number of vertices (``0..n_vertices-1``).
    indptr:
        ``(n_vertices + 1,)`` int64 row pointers.
    indices:
        ``(2 * n_edges,)`` int64 neighbour lists, row ``u`` occupying
        ``indices[indptr[u]:indptr[u + 1]]`` in ascending order.

    Use :meth:`from_edge_array` / :meth:`from_graph` instead of the raw
    constructor; both sort and deduplicate-check vectorized.
    """

    __slots__ = ("indptr", "indices", "_n_edges", "_hash")

    def __init__(self, n_vertices: int, indptr: np.ndarray, indices: np.ndarray):
        if indptr.shape != (n_vertices + 1,):
            raise ValueError(
                f"indptr must have shape ({n_vertices + 1},), got {indptr.shape}"
            )
        self.indptr = indptr
        self.indices = indices
        self._n_edges = indices.size // 2
        self._hash: int | None = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_edge_array(cls, n_vertices: int, edges: np.ndarray) -> "CSRGraph":
        """Build from an ``(m, 2)`` array of undirected edges.

        Edges may be in either orientation but must be distinct and free
        of self loops (guaranteed by the visibility builders; checked
        vectorized here since this constructor is exported API).
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return cls(
                n_vertices,
                np.zeros(n_vertices + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        if np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self loops are not allowed")
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        if src.min() < 0 or src.max() >= n_vertices:
            raise IndexError(f"edge endpoint out of range for n={n_vertices}")
        # Sort once on the fused (row, column) key: cheaper than a two-key
        # lexsort and yields ascending neighbours within each row.
        keys = src * np.int64(n_vertices) + dst
        order = np.argsort(keys)
        keys = keys[order]
        if np.any(keys[1:] == keys[:-1]):
            raise ValueError("duplicate edges are not allowed")
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n_vertices), out=indptr[1:])
        return cls(n_vertices, indptr, dst[order])

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert an adjacency-set :class:`Graph`."""
        return cls.from_edge_array(graph.n_vertices, graph.edge_array())

    # -- basic queries ----------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self.indptr.size - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self._n_edges

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbour array of ``u`` (a view; do not mutate)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists (binary search)."""
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def adjacency(self, u: int) -> np.ndarray:
        """Neighbours of ``u`` — :class:`Graph`-compatible spelling.

        Returns the sorted CSR row (a view) instead of a set.  Interop
        accessor: membership tests on the row are O(degree) scans, so
        code doing heavy neighbourhood intersection (the motif
        counters) should convert via :meth:`to_graph` first — the set
        materialisation is trivial next to those loops.
        """
        return self.neighbors(u)

    def edges(self):
        """Iterate edges as ``(u, v)`` int tuples with ``u < v``."""
        return map(tuple, self.edge_array().tolist())

    def edge_array(self) -> np.ndarray:
        """Edges as an ``(m, 2)`` array with ``u < v`` per row."""
        src = np.repeat(np.arange(self.n_vertices, dtype=np.int64), self.degrees())
        keep = src < self.indices
        return np.column_stack([src[keep], self.indices[keep]])

    # -- interop ----------------------------------------------------------
    def to_graph(self) -> Graph:
        """Convert to an adjacency-set :class:`Graph` in bulk.

        Builds each adjacency set straight from the CSR row (Python ints,
        matching what :meth:`Graph.add_edge` would have stored) without
        the per-edge membership/range checks.
        """
        n = self.n_vertices
        graph = Graph(n)
        indptr = self.indptr.tolist()
        flat = self.indices.tolist()
        adj = graph._adj
        for u in range(n):
            adj[u] = set(flat[indptr[u] : indptr[u + 1]])
        graph._n_edges = self._n_edges
        return graph

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        # Content hash (cached): the class is documented immutable, and
        # structural __eq__ requires equal objects to hash equally.
        if self._hash is None:
            self._hash = hash(
                (self.indptr.size, self.indptr.tobytes(), self.indices.tobytes())
            )
        return self._hash

    def __repr__(self) -> str:
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"


def _cartesian_max_tree(
    values_list: list[float],
) -> tuple[list[int], list[int], int, list[int], list[int]]:
    """One-pass monotone-stack construction of the Cartesian max-tree.

    Returns ``(left, right, root, hvg_u, hvg_v)``: ``left``/``right`` are
    child arrays of the max-tree (the earlier of equal maxima is the
    ancestor, matching ``np.argmax`` first-hit semantics), and
    ``(hvg_u, hvg_v)`` are the HVG edges, which the same pass yields as a
    by-product — every strictly-smaller pop and every stack-top link is
    one HVG edge (cf. ``horizontal_visibility_graph``).

    The two stack disciplines differ only on ties: the Cartesian tree
    must *keep* an equal value on the stack (popping it would orphan the
    true first maximum and corrupt pivot intervals), while the HVG drops
    the earlier of two equal bars because it is occluded for every later
    vertex.  Ties are therefore handled by marking the occluded entry
    instead of popping it: it stays on the stack for tree linkage but no
    longer emits HVG edges.
    """
    n = len(values_list)
    left = [-1] * n
    right = [-1] * n
    hvg_u: list[int] = []
    hvg_v: list[int] = []
    push_u = hvg_u.append
    push_v = hvg_v.append
    stack: list[int] = []
    stack_vals: list[float] = []
    occluded: list[bool] = []
    for j, vj in enumerate(values_list):
        popped = -1
        while stack_vals and stack_vals[-1] < vj:
            popped = stack.pop()
            stack_vals.pop()
            if not occluded.pop():
                push_u(popped)
                push_v(j)
        left[j] = popped
        if stack:
            top = stack[-1]
            right[top] = j
            # An occluded entry is never on top when a link is emitted:
            # its occluding equal sits above it until both are popped
            # together by a strictly larger value.
            push_u(top)
            push_v(j)
            if stack_vals[-1] == vj:
                occluded[-1] = True
        stack.append(j)
        stack_vals.append(vj)
        occluded.append(False)
    root = stack[0] if stack else -1
    return left, right, root, hvg_u, hvg_v


def hvg_edge_array(series: Sequence[float]) -> np.ndarray:
    """HVG edges of ``series`` as an ``(m, 2)`` int64 array.

    Same stack algorithm as the reference builder, but collecting edges
    into flat arrays instead of adjacency sets.
    """
    values = _as_float_array(series)
    _, _, _, hvg_u, hvg_v = _cartesian_max_tree(values.tolist())
    if not hvg_u:
        return _EMPTY_EDGES
    return np.column_stack(
        [np.asarray(hvg_u, dtype=np.int64), np.asarray(hvg_v, dtype=np.int64)]
    )


def _vg_edges_from_tree(
    values: np.ndarray,
    values_list: list[float],
    left: list[int],
    right: list[int],
    root: int,
) -> np.ndarray:
    """All natural-VG edges, given the Cartesian max-tree of the series.

    Walks the tree with an explicit stack; each node is the argmax pivot
    of its subtree interval, connected by two max-slope sweeps.  Long
    sweeps are vectorized (``cummax`` over the slope array); short ones
    stay interpreter loops, which are faster below ``_VECTOR_SWEEP_MIN``.
    """
    n = values.size
    small_u: list[int] = []
    small_v: list[int] = []
    ap_u = small_u.append
    ap_v = small_v.append
    # Sweeps of span 3..(_VECTOR_SWEEP_MIN - 1) are deferred as
    # (pivot, direction, span) triples and later run through one padded
    # 2-D cummax; span 1-2 is decided inline (the adjacent vertex is
    # always visible, the second one iff its slope beats the first).
    med_k: list[int] = []
    med_dir: list[int] = []
    med_span: list[int] = []
    pivot_ids: list[int] = []
    pivot_js: list[np.ndarray] = []
    stack: list[tuple[int, int, int]] = [(0, n - 1, root)]
    push = stack.append
    pop = stack.pop
    while stack:
        lo, hi, k = pop()
        vk = values_list[k]
        span = k - lo
        if span:
            if span <= 2:
                ap_u(k)
                ap_v(k - 1)
                if span == 2 and (values_list[k - 2] - vk) / 2 > values_list[k - 1] - vk:
                    ap_u(k)
                    ap_v(k - 2)
            elif span < _VECTOR_SWEEP_MIN:
                med_k.append(k)
                med_dir.append(-1)
                med_span.append(span)
            else:
                seg = values[k - 1 : lo - 1 : -1] if lo else values[k - 1 :: -1]
                slopes = (seg - vk) / np.arange(1, span + 1, dtype=np.float64)
                cummax = np.maximum.accumulate(slopes)
                visible = np.empty(span, dtype=bool)
                visible[0] = True
                visible[1:] = slopes[1:] > cummax[:-1]
                pivot_ids.append(k)
                pivot_js.append(k - 1 - np.nonzero(visible)[0])
            push((lo, k - 1, left[k]))
        span = hi - k
        if span:
            if span <= 2:
                ap_u(k)
                ap_v(k + 1)
                if span == 2 and (values_list[k + 2] - vk) / 2 > values_list[k + 1] - vk:
                    ap_u(k)
                    ap_v(k + 2)
            elif span < _VECTOR_SWEEP_MIN:
                med_k.append(k)
                med_dir.append(1)
                med_span.append(span)
            else:
                seg = values[k + 1 : hi + 1]
                slopes = (seg - vk) / np.arange(1, span + 1, dtype=np.float64)
                cummax = np.maximum.accumulate(slopes)
                visible = np.empty(span, dtype=bool)
                visible[0] = True
                visible[1:] = slopes[1:] > cummax[:-1]
                pivot_ids.append(k)
                pivot_js.append(k + 1 + np.nonzero(visible)[0])
            push((k + 1, hi, right[k]))
    parts = []
    if med_k:
        parts.append(_batched_sweeps(values, med_k, med_dir, med_span))
    if pivot_ids:
        counts = [js.size for js in pivot_js]
        us = np.repeat(np.asarray(pivot_ids, dtype=np.int64), counts)
        vs = np.concatenate(pivot_js)
        parts.append(np.column_stack([us, vs]))
    if small_u:
        parts.append(
            np.column_stack(
                [np.asarray(small_u, dtype=np.int64), np.asarray(small_v, dtype=np.int64)]
            )
        )
    if not parts:
        return _EMPTY_EDGES
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _batched_sweeps(
    values: np.ndarray, ks: list[int], dirs: list[int], spans: list[int]
) -> np.ndarray:
    """Run many short max-slope sweeps as one padded 2-D ``cummax``.

    Each row is one sweep: row ``r`` scans ``spans[r]`` vertices outward
    from pivot ``ks[r]`` in direction ``dirs[r]``.  Rows are padded to
    the widest span with ``-inf`` slopes, which can never beat the
    running maximum (column 0 is always valid, so the cummax is finite
    from the first column on); the slope arithmetic per element is the
    same ``(v_j - v_k) / distance`` as the scalar sweep, so visibility
    decisions are bit-identical.
    """
    k_arr = np.asarray(ks, dtype=np.int64)
    dir_arr = np.asarray(dirs, dtype=np.int64)
    span_arr = np.asarray(spans, dtype=np.int64)
    width = int(span_arr.max())
    offsets = np.arange(1, width + 1, dtype=np.int64)
    positions = k_arr[:, None] + dir_arr[:, None] * offsets[None, :]
    valid = offsets[None, :] <= span_arr[:, None]
    gathered = values[np.where(valid, positions, 0)]
    slopes = np.where(
        valid,
        (gathered - values[k_arr][:, None]) / offsets[None, :].astype(np.float64),
        -np.inf,
    )
    cummax = np.maximum.accumulate(slopes, axis=1)
    visible = np.empty(slopes.shape, dtype=bool)
    visible[:, 0] = True
    visible[:, 1:] = slopes[:, 1:] > cummax[:, :-1]
    rows, cols = np.nonzero(visible)
    return np.column_stack([k_arr[rows], positions[rows, cols]])


def vg_edge_array(series: Sequence[float]) -> np.ndarray:
    """Natural-VG edges of ``series`` as an ``(m, 2)`` int64 array."""
    values = _as_float_array(series)
    if values.size < 2:
        return _EMPTY_EDGES
    values_list = values.tolist()
    left, right, root, _, _ = _cartesian_max_tree(values_list)
    return _vg_edges_from_tree(values, values_list, left, right, root)


def fast_horizontal_visibility_graph_csr(series: Sequence[float]) -> CSRGraph:
    """HVG of ``series`` as a :class:`CSRGraph`."""
    values = _as_float_array(series)
    return CSRGraph.from_edge_array(values.size, hvg_edge_array(values))


def fast_visibility_graph_csr(series: Sequence[float]) -> CSRGraph:
    """Natural VG of ``series`` as a :class:`CSRGraph`."""
    values = _as_float_array(series)
    return CSRGraph.from_edge_array(values.size, vg_edge_array(values))


def fast_horizontal_visibility_graph(series: Sequence[float]) -> Graph:
    """Drop-in HVG builder; identical output to
    :func:`repro.graph.visibility.horizontal_visibility_graph`."""
    return fast_horizontal_visibility_graph_csr(series).to_graph()


def fast_visibility_graph(series: Sequence[float]) -> Graph:
    """Drop-in natural-VG builder; identical output to
    :func:`repro.graph.visibility.visibility_graph`."""
    return fast_visibility_graph_csr(series).to_graph()


def visibility_graphs_csr(series: Sequence[float]) -> tuple[CSRGraph, CSRGraph]:
    """``(VG, HVG)`` of one series from a single Cartesian-tree pass.

    The stack pass that builds the VG's pivot tree emits the HVG edges as
    a by-product, so requesting both graphs (the default feature config)
    costs one pass plus the VG sweeps.
    """
    values = _as_float_array(series)
    n = values.size
    if n < 2:
        empty = CSRGraph.from_edge_array(n, _EMPTY_EDGES)
        return empty, empty
    values_list = values.tolist()
    left, right, root, hvg_u, hvg_v = _cartesian_max_tree(values_list)
    vg_edges = _vg_edges_from_tree(values, values_list, left, right, root)
    hvg_edges = (
        np.column_stack(
            [np.asarray(hvg_u, dtype=np.int64), np.asarray(hvg_v, dtype=np.int64)]
        )
        if hvg_u
        else _EMPTY_EDGES
    )
    return (
        CSRGraph.from_edge_array(n, vg_edges),
        CSRGraph.from_edge_array(n, hvg_edges),
    )


def visibility_graphs(series: Sequence[float]) -> tuple[Graph, Graph]:
    """``(VG, HVG)`` of one series as :class:`Graph` objects (shared pass)."""
    vg, hvg = visibility_graphs_csr(series)
    return vg.to_graph(), hvg.to_graph()


def visibility_graphs_batch(
    X: np.ndarray, kind: str = "vg"
) -> list[CSRGraph]:
    """Build the VG (or HVG) of every row of ``X``.

    Parameters
    ----------
    X:
        ``(n_series, n)`` array, or any iterable of 1-D series (series
        of different lengths are allowed).
    kind:
        ``"vg"`` or ``"hvg"``.
    """
    if kind == "vg":
        builder = fast_visibility_graph_csr
    elif kind == "hvg":
        builder = fast_horizontal_visibility_graph_csr
    else:
        raise ValueError(f"kind must be 'vg' or 'hvg', got {kind!r}")
    if isinstance(X, np.ndarray):
        rows = X[None, :] if X.ndim == 1 else X
        return [builder(row) for row in rows]
    return [builder(np.asarray(row, dtype=np.float64)) for row in X]
