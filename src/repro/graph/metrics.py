"""Cheap statistical graph features (Section 2.2 of the paper).

Everything here is intentionally O(|V|) or O(|E|):

* density — Equation 2;
* degeneracy (maximal K such that a K-core exists) — Batagelj–Zaversnik
  bucket algorithm, Equation 3;
* degree assortativity — Pearson correlation of degrees across edges,
  Equation 4 (Newman's formulation);
* degree statistics — max / min / mean degree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph


def density_from_counts(n: int, m: int) -> float:
    """Edge density from vertex/edge counts — the shared final reduction
    of the batch and delta-maintained paths."""
    if n < 2:
        return 0.0
    return 2.0 * m / (n * (n - 1))


def density(graph: Graph) -> float:
    """Edge density ``2|E| / (|V| (|V|-1))``; 0 for graphs with < 2 vertices."""
    return density_from_counts(graph.n_vertices, graph.n_edges)


def degeneracy(graph: Graph) -> int:
    """Largest K for which ``graph`` has a non-empty K-core.

    Uses the O(|E|) bucket-queue peeling algorithm of Batagelj and
    Zaversnik: repeatedly remove a minimum-degree vertex; the answer is
    the largest degree seen at removal time.
    """
    n = graph.n_vertices
    if n == 0:
        return 0
    degrees = graph.degrees().copy()
    max_degree = int(degrees.max())
    # Bucket sort vertices by degree.
    bins = [0] * (max_degree + 1)
    for d in degrees:
        bins[int(d)] += 1
    start = 0
    for d in range(max_degree + 1):
        bins[d], start = start, start + bins[d]
    position = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    for v in range(n):
        position[v] = bins[int(degrees[v])]
        order[position[v]] = v
        bins[int(degrees[v])] += 1
    for d in range(max_degree, 0, -1):
        bins[d] = bins[d - 1]
    bins[0] = 0

    core = degrees.copy()
    for i in range(n):
        v = order[i]
        for u in graph.adjacency(int(v)):
            if core[u] > core[v]:
                # Move u one bucket down (swap with the first vertex of
                # its current bucket) and decrement its degree.
                du = int(core[u])
                pu = int(position[u])
                pw = bins[du]
                w = order[pw]
                if u != w:
                    position[u], position[w] = pw, pu
                    order[pu], order[pw] = w, u
                bins[du] += 1
                core[u] -= 1
    return int(core.max())


def assortativity_from_sums(m: int, d2: int, d3: int, e_prod: int) -> float:
    """Degree assortativity from exact integer moment sums.

    With ``x``/``y`` the degrees at either end of each edge (both
    orientations), Newman's ``cov(x, y) / (std(x) std(y))`` reduces over
    the ``2m`` orientations to an exact rational: ``sum x = d2``
    (``sum_v deg_v^2``), ``sum x^2 = d3``, ``sum x*y = 2 * e_prod``
    (``e_prod = sum_e deg_u deg_v``), and since ``x`` and ``y`` hold the
    same multiset, ``std(x) std(y) == var(x)``.  Clearing the common
    ``4 m^2`` denominator gives

        r = (4 m e_prod - d2^2) / (2 m d3 - d2^2)

    computed in arbitrary-precision integers with one final float
    division — the shared reduction of the batch and delta-maintained
    paths, so their results are bit-identical by construction (and
    independent of edge order, which the previous array reduction only
    approximated via a canonical sort).  Degenerate graphs (no edges,
    or all degrees equal so the variance vanishes) return 0.0.
    """
    if m == 0:
        return 0.0
    num = 4 * m * e_prod - d2 * d2
    den = 2 * m * d3 - d2 * d2
    if den == 0:
        return 0.0
    return float(num) / float(den)


def degree_moment_sums(graph: Graph) -> tuple[int, int, int]:
    """``(d2, d3, e_prod)``: the exact integer sums
    :func:`assortativity_from_sums` consumes, by direct reduction.

    ``d3`` is accumulated over the degree histogram in Python integers
    (no ``int64`` overflow for any feasible graph size)."""
    degrees = graph.degrees()
    d2 = int(np.dot(degrees, degrees))
    values, counts = np.unique(degrees, return_counts=True)
    d3 = sum(int(c) * int(v) ** 3 for v, c in zip(values.tolist(), counts.tolist()))
    edges = graph.edge_array()
    if edges.size:
        e_prod = int(np.dot(degrees[edges[:, 0]], degrees[edges[:, 1]]))
    else:
        e_prod = 0
    return d2, d3, e_prod


def assortativity_coefficient(graph: Graph) -> float:
    """Degree assortativity (Pearson correlation over edge endpoints).

    Follows Newman (2003): with ``x_e``/``y_e`` the degrees at either end
    of each edge (each edge contributing both orientations), the
    coefficient is ``cov(x, y) / (std(x) std(y))``.  Degenerate graphs
    (all degrees equal, or no edges) return 0.0, matching the convention
    used when feeding the value to a classifier.

    Reduced through :func:`assortativity_from_sums` on exact integer
    moment sums, so the result is independent of edge iteration order
    and equal, bit for bit, to the streaming tier's delta-maintained
    accumulators.
    """
    m = graph.n_edges
    if m == 0:
        return 0.0
    return assortativity_from_sums(m, *degree_moment_sums(graph))


def degree_statistics_from_degrees(degrees: np.ndarray) -> tuple[float, float, float]:
    """``(max, min, mean)`` of a degree array — the shared final
    reduction of the batch and delta-maintained paths (the streaming
    tier feeds it the incrementally maintained window degree array)."""
    if degrees.size == 0:
        return (0.0, 0.0, 0.0)
    return (float(degrees.max()), float(degrees.min()), float(degrees.mean()))


def degree_statistics(graph: Graph) -> tuple[float, float, float]:
    """``(max, min, mean)`` vertex degree; zeros for the empty graph."""
    return degree_statistics_from_degrees(graph.degrees())


def graph_statistics(graph: Graph) -> dict[str, float]:
    """All non-motif statistical features used by the paper, by name."""
    d_max, d_min, d_mean = degree_statistics(graph)
    return {
        "density": density(graph),
        "kcore": float(degeneracy(graph)),
        "assortativity": assortativity_coefficient(graph),
        "degree_max": d_max,
        "degree_min": d_min,
        "degree_mean": d_mean,
    }
