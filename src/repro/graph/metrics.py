"""Cheap statistical graph features (Section 2.2 of the paper).

Everything here is intentionally O(|V|) or O(|E|):

* density — Equation 2;
* degeneracy (maximal K such that a K-core exists) — Batagelj–Zaversnik
  bucket algorithm, Equation 3;
* degree assortativity — Pearson correlation of degrees across edges,
  Equation 4 (Newman's formulation);
* degree statistics — max / min / mean degree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph


def density(graph: Graph) -> float:
    """Edge density ``2|E| / (|V| (|V|-1))``; 0 for graphs with < 2 vertices."""
    n = graph.n_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.n_edges / (n * (n - 1))


def degeneracy(graph: Graph) -> int:
    """Largest K for which ``graph`` has a non-empty K-core.

    Uses the O(|E|) bucket-queue peeling algorithm of Batagelj and
    Zaversnik: repeatedly remove a minimum-degree vertex; the answer is
    the largest degree seen at removal time.
    """
    n = graph.n_vertices
    if n == 0:
        return 0
    degrees = graph.degrees().copy()
    max_degree = int(degrees.max())
    # Bucket sort vertices by degree.
    bins = [0] * (max_degree + 1)
    for d in degrees:
        bins[int(d)] += 1
    start = 0
    for d in range(max_degree + 1):
        bins[d], start = start, start + bins[d]
    position = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    for v in range(n):
        position[v] = bins[int(degrees[v])]
        order[position[v]] = v
        bins[int(degrees[v])] += 1
    for d in range(max_degree, 0, -1):
        bins[d] = bins[d - 1]
    bins[0] = 0

    core = degrees.copy()
    for i in range(n):
        v = order[i]
        for u in graph.adjacency(int(v)):
            if core[u] > core[v]:
                # Move u one bucket down (swap with the first vertex of
                # its current bucket) and decrement its degree.
                du = int(core[u])
                pu = int(position[u])
                pw = bins[du]
                w = order[pw]
                if u != w:
                    position[u], position[w] = pw, pu
                    order[pu], order[pw] = w, u
                bins[du] += 1
                core[u] -= 1
    return int(core.max())


def assortativity_coefficient(graph: Graph) -> float:
    """Degree assortativity (Pearson correlation over edge endpoints).

    Follows Newman (2003): with ``x_e``/``y_e`` the degrees at either end
    of each edge (each edge contributing both orientations), the
    coefficient is ``cov(x, y) / (std(x) std(y))``.  Degenerate graphs
    (all degrees equal, or no edges) return 0.0, matching the convention
    used when feeding the value to a classifier.
    """
    m = graph.n_edges
    if m == 0:
        return 0.0
    # Accumulate in canonical (sorted) edge order so the result is
    # independent of adjacency-set iteration order: the reference and
    # fast builders insert edges in different orders, and a float
    # reduction must not expose that.
    edges = graph.edge_array()
    edges = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
    degrees = graph.degrees().astype(np.float64)
    du = degrees[edges[:, 0]]
    dv = degrees[edges[:, 1]]
    x = np.empty(2 * m, dtype=np.float64)
    y = np.empty(2 * m, dtype=np.float64)
    x[0::2], y[0::2] = du, dv
    x[1::2], y[1::2] = dv, du
    x_mean = x.mean()
    y_mean = y.mean()
    x_std = x.std()
    y_std = y.std()
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(((x - x_mean) * (y - y_mean)).mean() / (x_std * y_std))


def degree_statistics(graph: Graph) -> tuple[float, float, float]:
    """``(max, min, mean)`` vertex degree; zeros for the empty graph."""
    if graph.n_vertices == 0:
        return (0.0, 0.0, 0.0)
    degrees = graph.degrees()
    return (float(degrees.max()), float(degrees.min()), float(degrees.mean()))


def graph_statistics(graph: Graph) -> dict[str, float]:
    """All non-motif statistical features used by the paper, by name."""
    d_max, d_min, d_mean = degree_statistics(graph)
    return {
        "density": density(graph),
        "kcore": float(degeneracy(graph)),
        "assortativity": assortativity_coefficient(graph),
        "degree_max": d_max,
        "degree_min": d_min,
        "degree_mean": d_mean,
    }
