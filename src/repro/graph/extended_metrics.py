"""Extended graph features from the paper's future-work list (Section 6).

The conclusion names "degree distribution entropy, centrality,
bipartivity, etc. [11]" as candidate additional features.  This module
implements them — still keeping the paper's constraint that features be
cheap relative to motif counting:

* degree-distribution entropy (Shannon entropy of the degree histogram);
* degree variance / heterogeneity;
* estrada bipartivity index (via eigenvalues of the adjacency matrix);
* eigenvector-centrality statistics (max / mean / std);
* closeness-centrality statistics via BFS from a vertex sample;
* global clustering coefficient (transitivity) and average local
  clustering.

They plug into the pipeline through
``FeatureConfig(features="extended")`` and are exercised by the ablation
benchmark (``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph


def degree_entropy_from_degrees(degrees: np.ndarray) -> float:
    """Shannon entropy (nats) of a degree array — the shared final
    reduction of the batch and delta-maintained paths (the streaming
    tier feeds it the incrementally maintained window degree array, so
    the two are bit-identical by construction)."""
    if degrees.size == 0:
        return 0.0
    _, counts = np.unique(degrees, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())


def degree_entropy(graph: Graph) -> float:
    """Shannon entropy (nats) of the degree distribution."""
    return degree_entropy_from_degrees(graph.degrees())


def degree_variance_from_degrees(degrees: np.ndarray) -> float:
    """Variance of a degree array — shared batch/streaming reduction."""
    if degrees.size == 0:
        return 0.0
    return float(degrees.var())


def degree_variance(graph: Graph) -> float:
    """Variance of the degree sequence (degree heterogeneity)."""
    return degree_variance_from_degrees(graph.degrees())


def _adjacency_matrix(graph: Graph) -> np.ndarray:
    n = graph.n_vertices
    A = np.zeros((n, n))
    edges = graph.edge_array()
    if edges.size:
        A[edges[:, 0], edges[:, 1]] = 1.0
        A[edges[:, 1], edges[:, 0]] = 1.0
    return A


def bipartivity(graph: Graph, adjacency: np.ndarray | None = None) -> float:
    """Estrada–Rodríguez-Velázquez spectral bipartivity index.

    ``b = sum_i cosh(lambda_i) / sum_i exp(lambda_i)`` over the adjacency
    spectrum: the fraction of closed-walk weight on even walks.  Equals 1
    for bipartite graphs and decreases towards 1/2 as odd cycles
    accumulate.  Uses a dense eigendecomposition (fine at visibility-
    graph sizes) with max-shift normalisation to avoid overflow.

    ``adjacency`` lets callers that need several spectral metrics (see
    :func:`extended_graph_statistics`) build the dense matrix once and
    share it instead of rebuilding it per metric.
    """
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return 1.0
    if adjacency is None:
        adjacency = _adjacency_matrix(graph)
    eigenvalues = np.linalg.eigvalsh(adjacency)
    lam_max = eigenvalues.max()
    # Both exponents are <= 0 after shifting by lambda_max, since the
    # spectrum of an undirected graph satisfies |lambda| <= lambda_max.
    pos = np.exp(eigenvalues - lam_max)
    neg = np.exp(-eigenvalues - lam_max)
    return float(0.5 * (pos + neg).sum() / pos.sum())


def eigenvector_centrality_stats(
    graph: Graph,
    max_iter: int = 200,
    tol: float = 1e-10,
    adjacency: np.ndarray | None = None,
) -> tuple[float, float, float]:
    """``(max, mean, std)`` of the eigenvector centrality (power iteration).

    Disconnected graphs use the dominant component implicitly through
    the power iteration; empty graphs return zeros.  Iterates on the
    dense adjacency matrix (``adjacency`` if supplied, else built once
    here): the matrix is invariant to edge iteration order, so the
    float reduction is deterministic across graph builders and between
    the batch and streaming tiers — and BLAS ``gemv`` beats scatter-add
    at visibility-graph sizes anyway.
    """
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return (0.0, 0.0, 0.0)
    if adjacency is None:
        adjacency = _adjacency_matrix(graph)
    x = np.full(n, 1.0 / np.sqrt(n))
    for _ in range(max_iter):
        # Iterate on A + I: same eigenvectors, but the spectral shift
        # breaks the +/-lambda oscillation of bipartite graphs.
        nxt = adjacency @ x + x
        norm = np.linalg.norm(nxt)
        if norm == 0.0:
            return (0.0, 0.0, 0.0)
        nxt /= norm
        if np.abs(nxt - x).max() < tol:
            x = nxt
            break
        x = nxt
    x = np.abs(x)
    return (float(x.max()), float(x.mean()), float(x.std()))


def closeness_centrality_stats(
    graph: Graph, n_sources: int = 32, seed: int = 0
) -> tuple[float, float]:
    """``(mean, max)`` closeness centrality estimated from BFS over a
    deterministic vertex sample (exact when ``n <= n_sources``)."""
    n = graph.n_vertices
    if n <= 1:
        return (0.0, 0.0)
    rng = np.random.default_rng(seed)
    sources = (
        np.arange(n)
        if n <= n_sources
        else np.sort(rng.choice(n, size=n_sources, replace=False))
    )
    closeness = []
    for source in sources:
        distances = np.full(n, -1, dtype=np.int64)
        distances[source] = 0
        frontier = [int(source)]
        total = 0
        reached = 0
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in graph.adjacency(u):
                    if distances[v] < 0:
                        distances[v] = distances[u] + 1
                        total += distances[v]
                        reached += 1
                        nxt.append(v)
            frontier = nxt
        if total > 0:
            closeness.append(reached / total)
        else:
            closeness.append(0.0)
    values = np.asarray(closeness)
    return (float(values.mean()), float(values.max()))


def transitivity_from_counts(triangle_edge_sum: int, wedges: int) -> float:
    """Global clustering from exact integer counts: ``triangle_edge_sum``
    is the sum over edges of endpoint co-degrees (three per triangle),
    ``wedges`` is ``sum_v C(deg_v, 2)``.  Shared final reduction of the
    batch and delta-maintained paths."""
    if wedges == 0:
        return 0.0
    return float(triangle_edge_sum / float(wedges))


def transitivity(graph: Graph) -> float:
    """Global clustering coefficient: 3 * triangles / wedges."""
    degrees = graph.degrees()
    wedges = int(np.sum(degrees * (degrees - 1) // 2))
    if wedges == 0:
        return 0.0
    triangles = 0
    for u, v in graph.edges():
        nu, nv = graph.adjacency(u), graph.adjacency(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        triangles += sum(1 for w in nu if w in nv)
    # Each triangle is counted once per edge = 3x.
    return transitivity_from_counts(triangles, wedges)


def average_clustering_from_counts(links_per_vertex, degrees) -> float:
    """Mean local clustering from per-vertex triangle (closed-pair)
    counts and degrees — shared batch/streaming reduction, accumulated
    in vertex order so the two paths are bit-identical."""
    n = len(degrees)
    if n == 0:
        return 0.0
    total = 0.0
    for u in range(n):
        k = int(degrees[u])
        if k < 2:
            continue
        total += 2.0 * int(links_per_vertex[u]) / (k * (k - 1))
    return float(total / n)


def average_clustering(graph: Graph) -> float:
    """Mean of per-vertex local clustering coefficients."""
    n = graph.n_vertices
    if n == 0:
        return 0.0
    links = np.zeros(n, dtype=np.int64)
    for u in range(n):
        nbrs = sorted(graph.adjacency(u))
        if len(nbrs) < 2:
            continue
        count = 0
        for i, a in enumerate(nbrs):
            adj_a = graph.adjacency(a)
            for b in nbrs[i + 1 :]:
                if b in adj_a:
                    count += 1
        links[u] = count
    return average_clustering_from_counts(links, graph.degrees())


def extended_graph_statistics(graph: Graph) -> dict[str, float]:
    """All future-work features, keyed by display label.

    The dense adjacency matrix both spectral metrics need is built once
    here and shared, instead of per metric.
    """
    adjacency = _adjacency_matrix(graph) if graph.n_edges else None
    ev_max, ev_mean, ev_std = eigenvector_centrality_stats(graph, adjacency=adjacency)
    close_mean, close_max = closeness_centrality_stats(graph)
    return {
        "DegEntropy": degree_entropy(graph),
        "DegVariance": degree_variance(graph),
        "Bipartivity": bipartivity(graph, adjacency=adjacency),
        "EigCentMax": ev_max,
        "EigCentMean": ev_mean,
        "EigCentStd": ev_std,
        "CloseMean": close_mean,
        "CloseMax": close_max,
        "Transitivity": transitivity(graph),
        "AvgClustering": average_clustering(graph),
    }
