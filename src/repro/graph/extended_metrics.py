"""Extended graph features from the paper's future-work list (Section 6).

The conclusion names "degree distribution entropy, centrality,
bipartivity, etc. [11]" as candidate additional features.  This module
implements them — still keeping the paper's constraint that features be
cheap relative to motif counting:

* degree-distribution entropy (Shannon entropy of the degree histogram);
* degree variance / heterogeneity;
* estrada bipartivity index (via eigenvalues of the adjacency matrix);
* eigenvector-centrality statistics (max / mean / std);
* closeness-centrality statistics via BFS from a vertex sample;
* global clustering coefficient (transitivity) and average local
  clustering.

They plug into the pipeline through
``FeatureConfig(features="extended")`` and are exercised by the ablation
benchmark (``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import Graph


def degree_entropy(graph: Graph) -> float:
    """Shannon entropy (nats) of the degree distribution."""
    if graph.n_vertices == 0:
        return 0.0
    degrees = graph.degrees()
    _, counts = np.unique(degrees, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())


def degree_variance(graph: Graph) -> float:
    """Variance of the degree sequence (degree heterogeneity)."""
    if graph.n_vertices == 0:
        return 0.0
    return float(graph.degrees().var())


def _adjacency_matrix(graph: Graph) -> np.ndarray:
    n = graph.n_vertices
    A = np.zeros((n, n))
    for u, v in graph.edges():
        A[u, v] = 1.0
        A[v, u] = 1.0
    return A


def bipartivity(graph: Graph) -> float:
    """Estrada–Rodríguez-Velázquez spectral bipartivity index.

    ``b = sum_i cosh(lambda_i) / sum_i exp(lambda_i)`` over the adjacency
    spectrum: the fraction of closed-walk weight on even walks.  Equals 1
    for bipartite graphs and decreases towards 1/2 as odd cycles
    accumulate.  Uses a dense eigendecomposition (fine at visibility-
    graph sizes) with max-shift normalisation to avoid overflow.
    """
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return 1.0
    eigenvalues = np.linalg.eigvalsh(_adjacency_matrix(graph))
    lam_max = eigenvalues.max()
    # Both exponents are <= 0 after shifting by lambda_max, since the
    # spectrum of an undirected graph satisfies |lambda| <= lambda_max.
    pos = np.exp(eigenvalues - lam_max)
    neg = np.exp(-eigenvalues - lam_max)
    return float(0.5 * (pos + neg).sum() / pos.sum())


def eigenvector_centrality_stats(
    graph: Graph, max_iter: int = 200, tol: float = 1e-10
) -> tuple[float, float, float]:
    """``(max, mean, std)`` of the eigenvector centrality (power iteration).

    Disconnected graphs use the dominant component implicitly through
    the power iteration; empty graphs return zeros.
    """
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return (0.0, 0.0, 0.0)
    # Canonical (sorted) edge order: the accumulation below is a float
    # reduction and must not depend on adjacency-set iteration order,
    # which differs between the reference and fast graph builders.
    edges = graph.edge_array()
    edges = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
    heads, tails = edges[:, 0], edges[:, 1]
    x = np.full(n, 1.0 / np.sqrt(n))
    for _ in range(max_iter):
        # Iterate on A + I: same eigenvectors, but the spectral shift
        # breaks the +/-lambda oscillation of bipartite graphs.
        nxt = x.copy()
        np.add.at(nxt, heads, x[tails])
        np.add.at(nxt, tails, x[heads])
        norm = np.linalg.norm(nxt)
        if norm == 0.0:
            return (0.0, 0.0, 0.0)
        nxt /= norm
        if np.abs(nxt - x).max() < tol:
            x = nxt
            break
        x = nxt
    x = np.abs(x)
    return (float(x.max()), float(x.mean()), float(x.std()))


def closeness_centrality_stats(
    graph: Graph, n_sources: int = 32, seed: int = 0
) -> tuple[float, float]:
    """``(mean, max)`` closeness centrality estimated from BFS over a
    deterministic vertex sample (exact when ``n <= n_sources``)."""
    n = graph.n_vertices
    if n <= 1:
        return (0.0, 0.0)
    rng = np.random.default_rng(seed)
    sources = (
        np.arange(n)
        if n <= n_sources
        else np.sort(rng.choice(n, size=n_sources, replace=False))
    )
    closeness = []
    for source in sources:
        distances = np.full(n, -1, dtype=np.int64)
        distances[source] = 0
        frontier = [int(source)]
        total = 0
        reached = 0
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in graph.adjacency(u):
                    if distances[v] < 0:
                        distances[v] = distances[u] + 1
                        total += distances[v]
                        reached += 1
                        nxt.append(v)
            frontier = nxt
        if total > 0:
            closeness.append(reached / total)
        else:
            closeness.append(0.0)
    values = np.asarray(closeness)
    return (float(values.mean()), float(values.max()))


def transitivity(graph: Graph) -> float:
    """Global clustering coefficient: 3 * triangles / wedges."""
    degrees = graph.degrees()
    wedges = float(np.sum(degrees * (degrees - 1) // 2))
    if wedges == 0:
        return 0.0
    triangles = 0
    for u, v in graph.edges():
        nu, nv = graph.adjacency(u), graph.adjacency(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        triangles += sum(1 for w in nu if w in nv)
    return float(triangles / wedges)  # each triangle counted once per edge = 3x


def average_clustering(graph: Graph) -> float:
    """Mean of per-vertex local clustering coefficients."""
    n = graph.n_vertices
    if n == 0:
        return 0.0
    total = 0.0
    for u in range(n):
        nbrs = sorted(graph.adjacency(u))
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        for i, a in enumerate(nbrs):
            adj_a = graph.adjacency(a)
            for b in nbrs[i + 1 :]:
                if b in adj_a:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return float(total / n)


def extended_graph_statistics(graph: Graph) -> dict[str, float]:
    """All future-work features, keyed by display label."""
    ev_max, ev_mean, ev_std = eigenvector_centrality_stats(graph)
    close_mean, close_max = closeness_centrality_stats(graph)
    return {
        "DegEntropy": degree_entropy(graph),
        "DegVariance": degree_variance(graph),
        "Bipartivity": bipartivity(graph),
        "EigCentMax": ev_max,
        "EigCentMean": ev_mean,
        "EigCentStd": ev_std,
        "CloseMean": close_mean,
        "CloseMax": close_max,
        "Transitivity": transitivity(graph),
        "AvgClustering": average_clustering(graph),
    }
