"""Exact counting of all graphlets (motifs) of size up to four.

This module stands in for PGD (Ahmed et al., *Efficient Graphlet Counting
for Large Networks*, ICDM 2015), the external C++ tool the paper uses for
motif statistics.  Like PGD it is edge-centric: per-edge triangle counts
are computed once, 4-cliques are counted by direct enumeration over
triangle pairs, and every remaining induced count — connected and
disconnected — follows from closed-form combinatorial identities.  The
identities are validated against brute-force enumeration in the tests.

Motif identifiers follow Table 1 of the paper:

====  =======================  ====  =========================
M21   2-edge                   M22   2-node-independent
M31   3-triangle               M33   3-node-1-edge
M32   3-path (wedge)           M34   3-node-independent
M41   4-clique                 M47   4-node-triangle
M42   4-chordal-cycle          M48   4-node-star (wedge + node)
M43   4-tailed-triangle        M49   4-node-2-edges
M44   4-cycle                  M410  4-node-1-edge
M45   4-star                   M411  4-node-independent
M46   4-path
====  =======================  ====  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from math import comb

import numpy as np

from repro.graph.adjacency import Graph

CONNECTED_MOTIFS_2 = ("m21",)
DISCONNECTED_MOTIFS_2 = ("m22",)
CONNECTED_MOTIFS_3 = ("m31", "m32")
DISCONNECTED_MOTIFS_3 = ("m33", "m34")
CONNECTED_MOTIFS_4 = ("m41", "m42", "m43", "m44", "m45", "m46")
DISCONNECTED_MOTIFS_4 = ("m47", "m48", "m49", "m410", "m411")

MOTIF_NAMES: dict[str, str] = {
    "m21": "2-edge",
    "m22": "2-node-independent",
    "m31": "3-triangle",
    "m32": "3-path",
    "m33": "3-node-1-edge",
    "m34": "3-node-independent",
    "m41": "4-clique",
    "m42": "4-chordal-cycle",
    "m43": "4-tailed-triangle",
    "m44": "4-cycle",
    "m45": "4-star",
    "m46": "4-path",
    "m47": "4-node-triangle",
    "m48": "4-node-star",
    "m49": "4-node-2-edges",
    "m410": "4-node-1-edge",
    "m411": "4-node-independent",
}

#: The five normalisation groups of Section 3.1 (motifs of the same size
#: and connectivity form one probability distribution each).
MOTIF_GROUPS: tuple[tuple[str, ...], ...] = (
    CONNECTED_MOTIFS_2 + DISCONNECTED_MOTIFS_2,
    CONNECTED_MOTIFS_3,
    DISCONNECTED_MOTIFS_3,
    CONNECTED_MOTIFS_4,
    DISCONNECTED_MOTIFS_4,
)


@dataclass(frozen=True)
class MotifCounts:
    """Induced counts of every motif of size 2, 3 and 4."""

    m21: int
    m22: int
    m31: int
    m32: int
    m33: int
    m34: int
    m41: int
    m42: int
    m43: int
    m44: int
    m45: int
    m46: int
    m47: int
    m48: int
    m49: int
    m410: int
    m411: int

    def as_dict(self) -> dict[str, int]:
        """All counts keyed by motif identifier."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def probability_distributions(self) -> dict[str, float]:
        """Motif probability distributions (Def. 3.4), normalised per group.

        Within each of the five size/connectivity groups the counts are
        divided by the group total, so each group forms a probability
        distribution.  Empty groups yield zero probabilities.
        """
        counts = self.as_dict()
        out: dict[str, float] = {}
        for group in MOTIF_GROUPS:
            total = sum(counts[key] for key in group)
            for key in group:
                out[key] = counts[key] / total if total > 0 else 0.0
        return out

    def total_sets(self, size: int) -> int:
        """Sum of counts over all motifs of the given size."""
        keys = {
            2: CONNECTED_MOTIFS_2 + DISCONNECTED_MOTIFS_2,
            3: CONNECTED_MOTIFS_3 + DISCONNECTED_MOTIFS_3,
            4: CONNECTED_MOTIFS_4 + DISCONNECTED_MOTIFS_4,
        }[size]
        counts = self.as_dict()
        return sum(counts[key] for key in keys)


@dataclass(frozen=True)
class MotifPrimitives:
    """The aggregate quantities every induced count of size <= 4 derives
    from.

    Both counting paths reduce a graph to these integers and then apply
    the *same* closed-form identities (:func:`motifs_from_primitives`):
    the batch path (:func:`count_motifs`) computes them by edge-centric
    enumeration, while the streaming path
    (:class:`repro.graph.incremental_metrics.MotifState`) maintains them
    as running accumulators under vertex add/remove deltas.  Sharing the
    derivation makes batch/incremental equality a structural property:
    equal primitives imply equal counts, exactly, in integers.
    """

    n: int
    m: int
    #: Number of triangles.
    triangles: int
    #: Non-induced wedges ``sum_v C(deg_v, 2)``.
    wedges_noninduced: int
    #: Non-induced 3-stars ``sum_v C(deg_v, 3)``.
    degree_choose3: int
    #: Number of 4-cliques.
    k4: int
    #: Non-induced 4-cycles (pairs of distinct 2-paths, halved).
    cycles_noninduced: int
    #: ``sum_e C(tri_e, 2)`` over per-edge triangle counts.
    tri_pair_sum: int
    #: ``sum_v tri_v * (deg_v - 2)`` over per-vertex triangle counts.
    tailed_noninduced: int
    #: ``sum_e (deg_u - 1)(deg_v - 1) - tri_e``.
    paths_noninduced: int
    #: ``sum_e n - (deg_u + deg_v - tri_e)`` (3-node-1-edge sets).
    m33: int


def motifs_from_primitives(p: MotifPrimitives) -> MotifCounts:
    """Induced counts of every motif from the aggregate primitives.

    Pure integer arithmetic (the subtraction identities of PGD /
    Table 1), validated by :func:`_validate` — a wrong primitive almost
    always breaks the partition checks.
    """
    n, m = p.n, p.m
    triangles = p.triangles
    wedges = p.wedges_noninduced - 3 * triangles  # induced 3-paths (M32)
    m33 = p.m33
    m34 = comb(n, 3) - triangles - wedges - m33

    # Size-4 connected motifs.
    k4 = p.k4
    diamonds = p.tri_pair_sum - 6 * k4
    c4 = p.cycles_noninduced - diamonds - 3 * k4
    tailed = p.tailed_noninduced - 4 * diamonds - 12 * k4
    stars = p.degree_choose3 - tailed - 2 * diamonds - 4 * k4
    paths = p.paths_noninduced - 2 * tailed - 4 * c4 - 6 * diamonds - 12 * k4

    # Size-4 disconnected motifs, via subtraction identities.
    m47 = triangles * (n - 3) - tailed - 2 * diamonds - 4 * k4
    m48 = wedges * (n - 3) - 2 * tailed - 2 * diamonds - 4 * c4 - 3 * stars - 2 * paths
    m49 = (
        comb(m, 2)
        - p.wedges_noninduced
        - paths
        - 2 * c4
        - 2 * diamonds
        - 3 * k4
        - tailed
    )
    # Every edge lies in comb(n-2, 2) different 4-sets; distributing those
    # incidences over the known edge counts per motif isolates M410.
    edge_incidences = m * comb(max(n - 2, 0), 2)
    m410 = edge_incidences - (
        6 * k4
        + 5 * diamonds
        + 4 * tailed
        + 4 * c4
        + 3 * stars
        + 3 * paths
        + 3 * m47
        + 2 * m48
        + 2 * m49
    )
    m411 = comb(n, 4) - (
        k4 + diamonds + tailed + c4 + stars + paths + m47 + m48 + m49 + m410
    )

    counts = MotifCounts(
        m21=m,
        m22=comb(n, 2) - m,
        m31=triangles,
        m32=wedges,
        m33=m33,
        m34=m34,
        m41=k4,
        m42=diamonds,
        m43=tailed,
        m44=c4,
        m45=stars,
        m46=paths,
        m47=m47,
        m48=m48,
        m49=m49,
        m410=m410,
        m411=m411,
    )
    _validate(counts, n)
    return counts


#: Above this many wedges (neighbour pairs) the vectorized counting path
#: would allocate large intermediate arrays (several int64 arrays of this
#: length); fall back to the original per-edge loops, which are slower
#: but O(1) extra memory per step.
_MAX_VECTOR_WEDGES = 2_000_000


def _wedge_pair_counts(
    graph: Graph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int] | None:
    """Vectorized edge-centric substrate for triangle / 4-cycle counting.

    Enumerates every *wedge* (unordered neighbour pair of some vertex)
    with NumPy — the same work the reference per-edge loops do in Python
    — and aggregates them into codegrees: for each vertex pair ``(a, b)``
    the number of common neighbours.  Returns ``(edges, tri, codegree,
    paired)`` where ``edges`` is the ``(m, 2)`` edge array, ``tri`` its
    per-edge triangle counts, ``codegree`` the count array over distinct
    pairs, and ``paired`` the number of distinct 2-path pairs (the
    non-induced 4-cycle numerator).  Returns ``None`` when the wedge
    count is large enough that the intermediate arrays would dominate
    memory (the callers then use the original loops).
    """
    n = graph.n_vertices
    edges = graph.edge_array()
    m = edges.shape[0]
    if m == 0:
        return edges, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0
    degrees = graph.degrees()
    n_wedges = int(np.sum(degrees * (degrees - 1) // 2))
    if n_wedges > _MAX_VECTOR_WEDGES:
        return None
    # Directed edge list grouped by source, neighbours ascending.
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((dst, src))
    dst = dst[order]
    src = src[order]
    # Within each source group every position pairs with the positions
    # after it: position p (with r_p successors in its group) contributes
    # pairs (dst[p], dst[p + 1 .. p + r_p]), already in ascending order.
    group_end = np.cumsum(np.bincount(src, minlength=n))[src]
    remaining = group_end - np.arange(2 * m) - 1
    if n_wedges:
        first = np.repeat(np.arange(2 * m), remaining)
        offsets = np.arange(n_wedges) - np.repeat(
            np.cumsum(remaining) - remaining, remaining
        )
        second = first + offsets + 1
        a = dst[first]
        b = dst[second]
        keys = a * np.int64(n) + b
        unique_keys, codegree = np.unique(keys, return_counts=True)
    else:
        unique_keys = np.zeros(0, dtype=np.int64)
        codegree = np.zeros(0, dtype=np.int64)
    paired = int(np.sum(codegree * (codegree - 1) // 2))
    if unique_keys.size:
        edge_keys = edges[:, 0] * np.int64(n) + edges[:, 1]
        positions = np.searchsorted(unique_keys, edge_keys)
        positions = np.minimum(positions, unique_keys.size - 1)
        tri = np.where(
            unique_keys[positions] == edge_keys, codegree[positions], 0
        ).astype(np.int64)
    else:
        tri = np.zeros(m, dtype=np.int64)
    return edges, tri, codegree, paired


def _edge_triangle_counts(graph: Graph) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Per-edge common-neighbour (triangle) counts, plus the edge list."""
    edges = list(graph.edges())
    tri = np.zeros(len(edges), dtype=np.int64)
    for idx, (u, v) in enumerate(edges):
        nu, nv = graph.adjacency(u), graph.adjacency(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        tri[idx] = sum(1 for w in nu if w in nv)
    return tri, edges


def _count_four_cliques(graph: Graph, edges: list[tuple[int, int]]) -> int:
    """Enumerate 4-cliques: for every edge, count adjacent pairs among its
    common neighbours.  Each clique is found once per edge (six times)."""
    total = 0
    for u, v in edges:
        nu, nv = graph.adjacency(u), graph.adjacency(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        common = [w for w in nu if w in nv]
        for i, w in enumerate(common):
            nbrs_w = graph.adjacency(w)
            for x in common[i + 1 :]:
                if x in nbrs_w:
                    total += 1
    assert total % 6 == 0, "each 4-clique must be counted exactly six times"
    return total // 6


def _count_noninduced_four_cycles(graph: Graph) -> int:
    """Non-induced 4-cycles via codegrees: a cycle is a pair of distinct
    length-2 paths between the same endpoints; each cycle has two diagonal
    endpoint pairs."""
    codegree: dict[tuple[int, int], int] = {}
    for u in range(graph.n_vertices):
        nbrs = sorted(graph.adjacency(u))
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                key = (a, b)
                codegree[key] = codegree.get(key, 0) + 1
    paired = sum(c * (c - 1) // 2 for c in codegree.values())
    assert paired % 2 == 0, "each 4-cycle has exactly two diagonals"
    return paired // 2


def count_motifs(graph: Graph) -> MotifCounts:
    """Count every induced motif of size up to four in ``graph``.

    Complexity is dominated by the per-edge triangle intersection
    (``O(m * d_max)``) and the 4-clique enumeration over triangle pairs,
    matching the cost profile PGD reports for its exact mode.  The
    triangle/codegree substrate and the subtraction identities run
    vectorized (see :func:`_wedge_pair_counts`); graphs whose wedge
    count would make the vectorized intermediates too large use the
    original per-edge loops.  Both paths are integer-exact and produce
    identical counts.
    """
    n = graph.n_vertices
    m = graph.n_edges
    degrees = graph.degrees()

    vectorized = _wedge_pair_counts(graph)
    if vectorized is not None:
        edge_arr, tri, _, paired = vectorized
        heads, tails = edge_arr[:, 0], edge_arr[:, 1]
        triangles = int(tri.sum()) // 3
        m33 = int(np.sum(n - (degrees[heads] + degrees[tails] - tri))) if m else 0
        # Only edges inside at least one triangle pair (tri >= 2) can
        # carry a 4-clique; enumerating just those keeps the one
        # remaining Python loop short.
        candidates = [tuple(edge) for edge in edge_arr[tri >= 2].tolist()]
        k4 = _count_four_cliques(graph, candidates)
        assert paired % 2 == 0, "each 4-cycle has exactly two diagonals"
        cycles_noninduced = paired // 2
        vertex_tri = (
            np.bincount(heads, weights=tri, minlength=n)
            + np.bincount(tails, weights=tri, minlength=n)
        ).astype(np.int64)
        paths_noninduced = (
            int(np.sum((degrees[heads] - 1) * (degrees[tails] - 1) - tri)) if m else 0
        )
    else:
        tri, edges = _edge_triangle_counts(graph)
        triangles = int(tri.sum()) // 3
        m33 = int(
            sum(
                n - (degrees[u] + degrees[v] - t)
                for (u, v), t in zip(edges, tri, strict=True)
            )
        )
        k4 = _count_four_cliques(graph, edges)
        cycles_noninduced = _count_noninduced_four_cycles(graph)
        vertex_tri = np.zeros(n, dtype=np.int64)
        for (u, v), t in zip(edges, tri, strict=True):
            vertex_tri[u] += t
            vertex_tri[v] += t
        paths_noninduced = int(
            sum(
                (degrees[u] - 1) * (degrees[v] - 1) - t
                for (u, v), t in zip(edges, tri, strict=True)
            )
        )

    # Tailed triangles from per-vertex triangle participation.
    assert np.all(vertex_tri % 2 == 0)
    vertex_tri //= 2  # each triangle at v is seen via both incident edges

    return motifs_from_primitives(
        MotifPrimitives(
            n=n,
            m=m,
            triangles=triangles,
            wedges_noninduced=int(np.sum(degrees * (degrees - 1) // 2)),
            degree_choose3=int(np.sum(degrees * (degrees - 1) * (degrees - 2) // 6)),
            k4=k4,
            cycles_noninduced=cycles_noninduced,
            tri_pair_sum=int(np.sum(tri * (tri - 1) // 2)),
            tailed_noninduced=int(np.sum(vertex_tri * (degrees - 2))),
            paths_noninduced=paths_noninduced,
            m33=m33,
        )
    )


def _validate(counts: MotifCounts, n: int) -> None:
    """Internal consistency checks: counts are non-negative and every
    k-subset of vertices is classified exactly once."""
    for key, value in counts.as_dict().items():
        if value < 0:
            raise AssertionError(f"negative motif count {key}={value}")
    if counts.total_sets(3) != comb(n, 3):
        raise AssertionError("size-3 motif counts do not partition all 3-sets")
    if counts.total_sets(4) != comb(n, 4):
        raise AssertionError("size-4 motif counts do not partition all 4-sets")


def count_motifs_bruteforce(graph: Graph) -> MotifCounts:
    """Classify every 3- and 4-subset directly (test oracle; O(n^4)).

    Four-vertex graphs are uniquely identified by their edge count plus
    sorted degree sequence, so no isomorphism machinery is needed.
    """
    from itertools import combinations

    n = graph.n_vertices
    size3 = {"m31": 0, "m32": 0, "m33": 0, "m34": 0}
    for trio in combinations(range(n), 3):
        k = sum(graph.has_edge(a, b) for a, b in combinations(trio, 2))
        size3[("m34", "m33", "m32", "m31")[k]] += 1

    signature_to_motif = {
        (6, (3, 3, 3, 3)): "m41",
        (5, (2, 2, 3, 3)): "m42",
        (4, (1, 2, 2, 3)): "m43",
        (4, (2, 2, 2, 2)): "m44",
        (3, (1, 1, 1, 3)): "m45",
        (3, (1, 1, 2, 2)): "m46",
        (3, (0, 2, 2, 2)): "m47",
        (2, (0, 1, 1, 2)): "m48",
        (2, (1, 1, 1, 1)): "m49",
        (1, (0, 0, 1, 1)): "m410",
        (0, (0, 0, 0, 0)): "m411",
    }
    size4 = {key: 0 for key in signature_to_motif.values()}
    for quad in combinations(range(n), 4):
        degs = {v: 0 for v in quad}
        n_edges = 0
        for a, b in combinations(quad, 2):
            if graph.has_edge(a, b):
                n_edges += 1
                degs[a] += 1
                degs[b] += 1
        signature = (n_edges, tuple(sorted(degs.values())))
        size4[signature_to_motif[signature]] += 1

    return MotifCounts(
        m21=graph.n_edges,
        m22=comb(n, 2) - graph.n_edges,
        **size3,
        **size4,
    )
