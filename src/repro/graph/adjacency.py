"""Compact undirected graph container used across the library.

Visibility graphs are small (hundreds to a few thousand vertices) and
sparse, and the statistics we extract need fast neighbourhood iteration
and set intersection.  Adjacency sets give both without the overhead of a
full networkx ``Graph``; conversion helpers are provided for
interoperability and for cross-checking in tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class Graph:
    """A simple undirected graph on vertices ``0..n_vertices-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.  Vertices are implicit; isolated vertices are
        allowed and participate in disconnected-motif counts.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self loops are rejected;
        duplicate edges are silently collapsed.
    """

    __slots__ = ("_adj", "_n_edges")

    def __init__(self, n_vertices: int, edges: Iterable[tuple[int, int]] = ()):
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._adj: list[set[int]] = [set() for _ in range(n_vertices)]
        self._n_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``(u, v)`` if not already present."""
        if u == v:
            raise ValueError(f"self loop on vertex {u} is not allowed")
        if not (0 <= u < len(self._adj)) or not (0 <= v < len(self._adj)):
            raise IndexError(f"edge ({u}, {v}) out of range for n={len(self._adj)}")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._n_edges += 1

    # -- basic queries ----------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self._n_edges

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``(u, v)`` exists."""
        return v in self._adj[u]

    def neighbors(self, u: int) -> frozenset[int]:
        """Neighbour set of ``u`` (read-only view semantics)."""
        return frozenset(self._adj[u])

    def adjacency(self, u: int) -> set[int]:
        """Internal adjacency set of ``u``.

        Exposed for performance-critical consumers (motif counting); the
        caller must not mutate the returned set.
        """
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return len(self._adj[u])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array."""
        return np.fromiter(
            (len(nbrs) for nbrs in self._adj), dtype=np.int64, count=len(self._adj)
        )

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def edge_array(self) -> np.ndarray:
        """Edges as an ``(m, 2)`` array with ``u < v`` per row."""
        if self._n_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        out = np.empty((self._n_edges, 2), dtype=np.int64)
        i = 0
        for u, v in self.edges():
            out[i, 0] = u
            out[i, 1] = v
            i += 1
        return out

    # -- structure --------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (single vertex counts as connected)."""
        n = self.n_vertices
        if n <= 1:
            return True
        seen = bytearray(n)
        stack = [0]
        seen[0] = 1
        found = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = 1
                    found += 1
                    stack.append(v)
        return found == n

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph on ``vertices`` with vertices relabelled 0..k-1."""
        verts = list(vertices)
        index = {v: i for i, v in enumerate(verts)}
        sub = Graph(len(verts))
        for v in verts:
            for w in self._adj[v]:
                if w in index and v < w:
                    sub.add_edge(index[v], index[w])
        return sub

    # -- interop ----------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for cross-checking)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_vertices))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a networkx graph with integer labels ``0..n-1``."""
        out = cls(g.number_of_nodes())
        for u, v in g.edges():
            out.add_edge(int(u), int(v))
        return out

    @classmethod
    def from_edges(cls, n_vertices: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Alias constructor matching ``Graph(n, edges)``."""
        return cls(n_vertices, edges)

    # -- dunder -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
