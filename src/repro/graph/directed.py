"""Directed and weighted visibility-graph variants.

Section 2.1 notes that "it is possible to create a directed version [of
the VG] by limiting the direction of viewpoints" and cites weighted VGs
(Supriya et al., 2016) as a way to "quantitatively distinguish generic
time series".  These variants extend the substrate beyond what the main
pipeline needs:

* :func:`directed_visibility_degrees` — in/out degree sequences of the
  left-to-right directed VG (edges point forward in time), plus the
  degree-based irreversibility statistics used in the VG literature
  (Kullback-Leibler divergence between in- and out-degree
  distributions estimates time irreversibility).
* :class:`WeightedGraph` / :func:`weighted_visibility_graph` — VG edges
  weighted by the view angle between the connected samples, with
  weighted degree (strength) statistics.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.visibility import visibility_graph


def directed_visibility_degrees(series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """In- and out-degree sequences of the time-directed visibility graph.

    Every undirected VG edge ``(i, j)`` with ``i < j`` becomes the arc
    ``i -> j``; a vertex's out-degree counts bars it sees to its future,
    its in-degree bars that saw it from the past.
    """
    graph = visibility_graph(series)
    n = graph.n_vertices
    out_degree = np.zeros(n, dtype=np.int64)
    in_degree = np.zeros(n, dtype=np.int64)
    for u, v in graph.edges():
        out_degree[u] += 1
        in_degree[v] += 1
    return in_degree, out_degree


def degree_distribution(degrees: np.ndarray) -> dict[int, float]:
    """Empirical probability distribution of a degree sequence."""
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return {}
    values, counts = np.unique(degrees, return_counts=True)
    total = counts.sum()
    return {int(v): float(c) / total for v, c in zip(values, counts)}


def irreversibility_kld(series: np.ndarray, smoothing: float = 0.5) -> float:
    """Time-irreversibility estimate: KL(out-degree dist || in-degree dist).

    Lacasa et al. showed this divergence vanishes for reversible
    (e.g. i.i.d. or Gaussian linear) processes and grows with
    irreversible dynamics.  Laplace smoothing over the union support
    keeps finite-sample estimates bounded (an unsmoothed KL explodes on
    any degree value seen in one direction only).
    """
    in_degree, out_degree = directed_visibility_degrees(series)
    support = np.union1d(np.unique(in_degree), np.unique(out_degree))
    out_counts = np.array([np.sum(out_degree == v) for v in support], dtype=np.float64)
    in_counts = np.array([np.sum(in_degree == v) for v in support], dtype=np.float64)
    p = (out_counts + smoothing) / (out_counts.sum() + smoothing * support.size)
    q = (in_counts + smoothing) / (in_counts.sum() + smoothing * support.size)
    return float(max(np.sum(p * np.log(p / q)), 0.0))


class WeightedGraph:
    """An undirected graph with float edge weights (adjacency dicts)."""

    __slots__ = ("_adj",)

    def __init__(self, n_vertices: int):
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self._adj: list[dict[int, float]] = [dict() for _ in range(n_vertices)]

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        """Number of weighted edges."""
        return sum(len(d) for d in self._adj) // 2

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert/overwrite the weighted edge ``(u, v)``."""
        if u == v:
            raise ValueError("self loops are not allowed")
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; KeyError if absent."""
        return self._adj[u][v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge exists."""
        return v in self._adj[u]

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """Iterate ``(u, v, weight)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def strengths(self) -> np.ndarray:
        """Weighted degree (strength) of every vertex."""
        return np.array([sum(d.values()) for d in self._adj])

    def to_unweighted(self) -> Graph:
        """Drop the weights."""
        graph = Graph(self.n_vertices)
        for u, v, _ in self.edges():
            graph.add_edge(u, v)
        return graph


def weighted_visibility_graph(series: np.ndarray) -> WeightedGraph:
    """VG with edges weighted by the absolute view angle.

    The weight of edge ``(i, j)`` is ``|arctan((v_j - v_i) / (j - i))|``
    (the elevation angle between the two bar tops), following the
    weighted-VG construction of Supriya et al. (2016).  Structure equals
    the unweighted VG exactly.
    """
    series = np.asarray(series, dtype=np.float64)
    base = visibility_graph(series)
    weighted = WeightedGraph(base.n_vertices)
    for u, v in base.edges():
        angle = np.arctan((series[v] - series[u]) / (v - u))
        weighted.add_edge(u, v, float(abs(angle)))
    return weighted


def weighted_strength_statistics(graph: WeightedGraph) -> dict[str, float]:
    """Max / min / mean strength plus total weight — the weighted
    analogue of the paper's degree statistics."""
    if graph.n_vertices == 0:
        return {
            "strength_max": 0.0,
            "strength_min": 0.0,
            "strength_mean": 0.0,
            "total_weight": 0.0,
        }
    strengths = graph.strengths()
    total = sum(w for _, _, w in graph.edges())
    return {
        "strength_max": float(strengths.max()),
        "strength_min": float(strengths.min()),
        "strength_mean": float(strengths.mean()),
        "total_weight": float(total),
    }
