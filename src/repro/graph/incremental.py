"""Incremental sliding-window maintenance of visibility graphs.

The batch builders (:mod:`repro.graph.fast`) rebuild a window's VG/HVG
from scratch; on a stride-1 sliding window that throws away the work of
the ``n - 1`` shared points.  :class:`SlidingVisibilityGraph` keeps the
graph of the current window alive across ``push``/``evict`` and updates
it with exactly the edges that change:

* **push(x)** — appending a point can only create edges incident to it
  (no remaining pair gains or loses an interior point), so one
  visibility pass from the right end finds every new edge.  For the
  HVG that pass is the reference stack algorithm with its stack
  *persisted across pushes* (the stack holds the strict suffix maxima
  of the window — a property of later points only, so it is the same
  stack a fresh pass over any suffix would build).  For the natural VG
  the pass replays exactly the decisions the divide-and-conquer
  builders make: every VG edge is discovered from its *pivot* endpoint
  (the Cartesian-tree ancestor — the max of the enclosing interval), so
  the structure keeps the tree's right spine (the non-strict suffix
  maxima) with one running max-slope per spine vertex.  The new point
  is tested against each spine vertex's sweep — the same
  ``slope > running_max`` comparison, in the same order, on the same
  floats as :func:`repro.graph.visibility.visibility_graph_dc` — and
  then runs its own (vectorized) pivot sweep over the interval it
  dominates.  Bit-identical decisions matter: on adversarial values
  (e.g. PAA block means) differently-anchored float comparisons can
  disagree about a borderline line of sight, and the contract here is
  equality with the batch builders, not merely mathematical visibility.
* **evict()** — the evicted point is the window minimum index, hence
  interior to no remaining pair: only its own edges disappear.  Its
  neighbours are exactly the right-adjacency recorded at push time, and
  in each neighbour's (ascending) left-neighbour list the evicted
  vertex is the head — eviction advances a per-vertex head pointer
  instead of rewriting lists.

Per tick (one push + one evict) the work is one O(window) vectorized
sweep plus O(degree) bookkeeping, versus the batch builder's full
O(window) *sweeps*; ``benchmarks/test_streaming.py`` records the
resulting per-tick speedup in ``results/BENCH_streaming.json``.

``csr()`` materialises the window as a :class:`~repro.graph.fast.CSRGraph`
with window-local vertex ids, *identical* to what the batch builders
produce for the same window (property-tested on every prefix and window
in ``tests/test_incremental_graph_property.py``).  Per-vertex neighbour
rows and the degree array are maintained incrementally, so a call after
one tick re-renders only the O(degree) rows the tick touched and pays
one C-level concatenation for the rest.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.fast import CSRGraph
from repro.graph.incremental_metrics import CLEAR_DELTA, GraphDelta

_EMPTY_ROW = np.empty(0, dtype=np.int64)

#: Kinds accepted by :class:`SlidingVisibilityGraph`.
KINDS = ("vg", "hvg")


class SlidingVisibilityGraph:
    """VG or HVG of a sliding window, maintained incrementally.

    Parameters
    ----------
    kind:
        ``"vg"`` (natural visibility) or ``"hvg"`` (horizontal).
    window:
        Optional capacity: when set, a ``push`` on a full window evicts
        the oldest point first.  Without it the structure only grows
        until :meth:`evict` is called.
    allocator:
        Optional slab allocator (``acquire(length, dtype)`` /
        ``release(row)``, e.g. :class:`repro.core.slab.SlabPool`) for
        the numeric value/degree buffers.  With ``window`` set those
        buffers are fixed at ``2 * window`` elements and never grow, so
        pooled rows are reused verbatim across session churn; call
        :meth:`release_buffers` when done to return them.

    Vertices carry *global* indices internally (the k-th pushed point is
    vertex ``k`` forever); :meth:`csr`/:meth:`graph` translate to
    window-local ids ``0..len-1`` so the output is directly comparable
    to a batch build of the same window.

    Thread safety: none — an instance belongs to a single stream
    session and must be externally serialised (the serving tier holds
    the session lock around every touch).  The allocator, if shared,
    must itself be thread-safe.
    """

    __slots__ = (
        "kind",
        "window",
        "_alloc",
        "_buf",
        "_deg",
        "_base",
        "_lo",
        "_hi",
        "_left",
        "_left_head",
        "_right",
        "_rows",
        "_dirty",
        "_m",
        "_stack",
        "_rmax",
        "_listeners",
    )

    def __init__(self, kind: str, window: int | None = None, allocator=None):
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.kind = kind
        self.window = window
        self._alloc = allocator
        capacity = 64 if window is None else max(2 * window, 2)
        if allocator is None:
            self._buf = np.empty(capacity, dtype=np.float64)
            self._deg = np.zeros(capacity, dtype=np.int64)
        else:
            self._buf = allocator.acquire(capacity, "float64")
            self._deg = allocator.acquire(capacity, "int64")
        self._base = 0  # global index of _buf[0] / _deg[0]
        self._lo = 0  # global index of the oldest window point
        self._hi = 0  # one past the newest
        self._left: dict[int, np.ndarray] = {}
        self._left_head: dict[int, int] = {}
        self._right: dict[int, list[int]] = {}
        #: Cached per-vertex neighbour rows (global indices, ascending),
        #: ``_rows[g - _lo]``; entries in ``_dirty`` are stale.
        self._rows: list[np.ndarray] = []
        self._dirty: set[int] = set()
        self._m = 0
        # The maintained monotone structure (deque: eviction trims the
        # bottom, pushes pop the top).  HVG: the *strict* suffix maxima
        # (strictly decreasing values).  VG: the Cartesian tree's right
        # spine — the non-strict suffix maxima (ties kept, matching the
        # first-hit ``argmax`` pivot rule), each with a running max
        # slope over the points pushed after it (``_rmax``).
        self._stack: deque[int] = deque()
        self._rmax: dict[int, float] = {}
        #: Delta subscribers (e.g. metric banks), called once per
        #: push/evict/clear with the :class:`GraphDelta` describing it.
        self._listeners: list = []

    # -- sizes -------------------------------------------------------------
    def __len__(self) -> int:
        return self._hi - self._lo

    @property
    def n_vertices(self) -> int:
        """Points currently in the window."""
        return self._hi - self._lo

    @property
    def n_edges(self) -> int:
        """Undirected edges of the current window graph."""
        return self._m

    def values(self) -> np.ndarray:
        """Window values, oldest first (a copy)."""
        return self._buf[self._lo - self._base : self._hi - self._base].copy()

    def degree_array(self) -> np.ndarray:
        """Window degrees, oldest first — the incrementally maintained
        accumulator behind the streaming degree statistics.

        A *view* into internal storage: read it and let go (the next
        push may reallocate); never write through it.
        """
        return self._deg[self._lo - self._base : self._hi - self._base]

    def subscribe(self, listener) -> None:
        """Register a callable receiving one :class:`GraphDelta` per
        push (``add``), evict (``remove``) and clear — the edge-delta
        stream the incremental metric states consume."""
        self._listeners.append(listener)

    # -- updates -----------------------------------------------------------
    def push(self, value: float) -> int:
        """Append one point (evicting first on a full window).

        Returns the number of edges the new point created.
        """
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(f"series values must be finite, got {value!r}")
        if self.window is not None and self._hi - self._lo >= self.window:
            self.evict()
        self._ensure_capacity()
        g = self._hi
        offset = g - self._base
        self._buf[offset] = value
        self._hi = g + 1
        if self.kind == "hvg":
            left = self._hvg_left_visible(g, value)
        else:
            left = self._vg_left_visible(g, value)
        self._left[g] = left
        self._left_head[g] = 0
        self._right[g] = []
        self._rows.append(left)  # complete while nothing is evicted/appended
        n_new = left.size
        self._deg[offset] = n_new
        if n_new:
            base = self._base
            dirty = self._dirty
            deg = self._deg
            for k in left.tolist():
                self._right[k].append(g)
                deg[k - base] += 1
                dirty.add(k)
            self._m += n_new
        if self._listeners:
            delta = GraphDelta("add", g, left)
            for listener in self._listeners:
                listener(delta)
        return int(n_new)

    def evict(self) -> None:
        """Drop the oldest point and every edge incident to it."""
        if self._hi == self._lo:
            raise IndexError("evict from an empty window")
        i = self._lo
        neighbours = self._right[i]
        if neighbours:
            base = self._base
            dirty = self._dirty
            deg = self._deg
            for k in neighbours:
                # The evicted vertex is the window's minimum index, so it
                # heads each neighbour's ascending left-neighbour list.
                self._left_head[k] += 1
                deg[k - base] -= 1
                dirty.add(k)
            self._m -= len(neighbours)
        del self._left[i], self._left_head[i], self._right[i]
        del self._rows[0]
        self._dirty.discard(i)
        self._lo = i + 1
        if self._stack and self._stack[0] == i:
            self._stack.popleft()
            self._rmax.pop(i, None)
        if self._listeners:
            delta = GraphDelta("remove", i, np.asarray(neighbours, dtype=np.int64))
            for listener in self._listeners:
                listener(delta)

    def clear(self) -> None:
        """Reset to an empty window (global indices keep counting up)."""
        self._left.clear()
        self._left_head.clear()
        self._right.clear()
        self._rows.clear()
        self._dirty.clear()
        self._stack.clear()
        self._rmax.clear()
        self._m = 0
        self._lo = self._hi
        for listener in self._listeners:
            listener(CLEAR_DELTA)

    # -- materialisation ---------------------------------------------------
    def csr(self) -> CSRGraph:
        """The window graph as a :class:`CSRGraph` (window-local ids).

        Identical (``==``) to the batch builders' CSR for the same
        window values.
        """
        lo, hi = self._lo, self._hi
        n = hi - lo
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n == 0:
            return CSRGraph(0, indptr, _EMPTY_ROW.copy())
        rows = self._rows
        if self._dirty:
            for g in self._dirty:
                rows[g - lo] = self._render_row(g)
            self._dirty.clear()
        np.cumsum(self._deg[lo - self._base : hi - self._base], out=indptr[1:])
        if indptr[-1] == 0:
            return CSRGraph(n, indptr, _EMPTY_ROW.copy())
        indices = np.concatenate(rows)
        if lo:
            indices = indices - lo
        return CSRGraph(n, indptr, indices)

    def graph(self) -> Graph:
        """The window graph as an adjacency-set :class:`Graph`."""
        return self.csr().to_graph()

    def _render_row(self, g: int) -> np.ndarray:
        left = self._left[g]
        head = self._left_head[g]
        valid_left = left[head:] if head else left
        right = self._right[g]
        if not right:
            return valid_left
        right_arr = np.asarray(right, dtype=np.int64)
        if not valid_left.size:
            return right_arr
        return np.concatenate([valid_left, right_arr])

    # -- visibility passes -------------------------------------------------
    def _vg_left_visible(self, g: int, value: float) -> np.ndarray:
        """Vertices gaining an edge to the new point, by pivot sweeps.

        Two parts, together reproducing the divide-and-conquer builder's
        float decisions exactly:

        * every spine vertex ``p`` (``v_p >= value``) is the pivot of an
          interval whose right sweep now reaches the new point: the
          reference comparison ``slope(p, g) > running_max(p)`` decides
          the edge and advances ``p``'s running max;
        * the new point is the pivot of the interval it dominates (left
          of it, down to the nearest spine vertex): one vectorized
          max-slope sweep — the same arithmetic as
          :func:`repro.graph.fast.vg_edge_array`'s pivot sweeps.
        """
        stack = self._stack
        rmax = self._rmax
        buf, base = self._buf, self._base
        while stack and buf[stack[-1] - base] < value:
            # Popped vertices fall inside the new point's pivot interval;
            # their own sweeps are complete (they reached g - 1).
            del rmax[stack.pop()]
        hits: list[int] = []
        for p in stack:
            slope = (value - buf[p - base]) / (g - p)
            if slope > rmax[p]:
                hits.append(p)
                rmax[p] = slope
        sweep_lo = stack[-1] + 1 if stack else self._lo
        stack.append(g)
        rmax[g] = -np.inf
        span = g - sweep_lo
        if span == 0:
            return np.asarray(hits, dtype=np.int64) if hits else _EMPTY_ROW
        if span == 1:
            hits.append(sweep_lo)
            return np.asarray(hits, dtype=np.int64)
        seg = buf[sweep_lo - base : g - base][::-1]
        slopes = (seg - value) / np.arange(1, span + 1, dtype=np.float64)
        cummax = np.maximum.accumulate(slopes)
        visible = np.empty(span, dtype=bool)
        visible[0] = True
        visible[1:] = slopes[1:] > cummax[:-1]
        swept = (g - 1 - np.nonzero(visible)[0])[::-1]
        if not hits:
            return np.ascontiguousarray(swept)
        return np.concatenate([np.asarray(hits, dtype=np.int64), swept])

    def _hvg_left_visible(self, g: int, value: float) -> np.ndarray:
        """HVG edges of the new point, via the persistent monotone stack.

        Same discipline as the reference builder: pop (and connect)
        every strictly smaller bar, connect the first bar at least as
        tall, and drop an equal bar it occludes.
        """
        stack = self._stack
        buf, base = self._buf, self._base
        left: list[int] = []
        while stack and buf[stack[-1] - base] < value:
            left.append(stack.pop())
        if stack:
            top = stack[-1]
            left.append(top)
            if buf[top - base] == value:
                stack.pop()
        stack.append(g)
        if not left:
            return _EMPTY_ROW
        left.reverse()
        return np.asarray(left, dtype=np.int64)

    # -- storage -----------------------------------------------------------
    def _ensure_capacity(self) -> None:
        if self._hi - self._base < self._buf.size:
            return
        live = self._hi - self._lo
        lo_offset = self._lo - self._base
        if lo_offset >= self._buf.size // 2:
            # Plenty of dead space in front: slide live values down.
            self._buf[:live] = self._buf[lo_offset : lo_offset + live]
            self._deg[:live] = self._deg[lo_offset : lo_offset + live]
        else:
            size = max(2 * self._buf.size, live + 1)
            if self._alloc is None:
                grown = np.empty(size, dtype=np.float64)
                grown_deg = np.zeros(size, dtype=np.int64)
            else:
                # Only the unbounded (window=None) case ever gets here;
                # windowed buffers slide in place at fixed capacity.
                grown = self._alloc.acquire(size, "float64")
                grown_deg = self._alloc.acquire(size, "int64")
            grown[:live] = self._buf[lo_offset : lo_offset + live]
            grown_deg[:live] = self._deg[lo_offset : lo_offset + live]
            if self._alloc is not None:
                self._alloc.release(self._buf)
                self._alloc.release(self._deg)
            self._buf = grown
            self._deg = grown_deg
        self._base = self._lo

    def release_buffers(self) -> None:
        """Return slab-backed buffers to the allocator (idempotent).

        The graph is unusable afterwards; call only when discarding it
        (session close).  A no-op for graphs built without an
        allocator.
        """
        if self._alloc is None:
            return
        alloc, self._alloc = self._alloc, None
        alloc.release(self._buf)
        alloc.release(self._deg)
        self._buf = np.empty(0, dtype=np.float64)
        self._deg = np.empty(0, dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"SlidingVisibilityGraph(kind={self.kind!r}, window={self.window}, "
            f"n_vertices={self.n_vertices}, n_edges={self.n_edges})"
        )


class SlidingGraphWindow:
    """VG and/or HVG of one sliding window, updated together.

    A thin convenience over per-kind :class:`SlidingVisibilityGraph`
    instances sharing the same push/evict cadence — the shape the
    streaming feature extractor and the benchmarks consume.

    Thread safety: none (same contract as the per-kind graphs — the
    owner serialises access).
    """

    __slots__ = ("graphs",)

    def __init__(
        self,
        kinds: tuple[str, ...] = ("vg", "hvg"),
        window: int | None = None,
        allocator=None,
    ):
        if not kinds:
            raise ValueError("at least one graph kind is required")
        self.graphs = {
            kind: SlidingVisibilityGraph(kind, window, allocator=allocator)
            for kind in kinds
        }

    def release_buffers(self) -> None:
        """Return every kind's slab-backed buffers (idempotent)."""
        for graph in self.graphs.values():
            graph.release_buffers()

    def push(self, value: float) -> None:
        for graph in self.graphs.values():
            graph.push(value)

    def evict(self) -> None:
        for graph in self.graphs.values():
            graph.evict()

    def clear(self) -> None:
        for graph in self.graphs.values():
            graph.clear()

    def __len__(self) -> int:
        return len(next(iter(self.graphs.values())))

    def csr(self, kind: str) -> CSRGraph:
        return self.graphs[kind].csr()

    def graph(self, kind: str) -> Graph:
        return self.graphs[kind].graph()
