"""Visibility-graph transforms for time series.

Implements the natural visibility graph (VG) of Lacasa et al. (2008) and
the horizontal visibility graph (HVG) of Luque et al. (2009):

* ``visibility_graph_naive`` — the O(n^2) left-to-right sweep, used as the
  reference implementation;
* ``visibility_graph_dc`` — the divide-and-conquer builder (max-value
  pivot recursion) with O(n log n) expected complexity, standing in for
  the sub-quadratic algorithm of Afshani et al. cited by the paper;
* ``horizontal_visibility_graph`` — the exact O(n) stack algorithm.

Both VG builders produce identical graphs (tested against each other and
against brute force); ``visibility_graph`` dispatches to the
divide-and-conquer variant by default.

Visibility definition (paper Def. 2.3): ``(i, j)`` with ``i < j`` is an
edge iff for every ``k`` with ``i < k < j``::

    v_k < v_j + (v_i - v_j) * (j - k) / (j - i)

i.e. every intermediate bar lies strictly below the straight line joining
the tops of bars ``i`` and ``j``.  HVG (Def. 2.4) instead requires
``v_k < min(v_i, v_j)`` for all intermediate ``k``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.adjacency import Graph


def _as_float_array(series: Sequence[float]) -> np.ndarray:
    values = np.asarray(series, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"time series must be 1-dimensional, got shape {values.shape}")
    if values.size and not np.all(np.isfinite(values)):
        raise ValueError("time series contains NaN or infinite values")
    return values


def visibility_graph_naive(series: Sequence[float]) -> Graph:
    """Natural visibility graph via the O(n^2) angular sweep.

    For each vertex ``i`` we scan right keeping the running maximum of the
    slope from ``i``; vertex ``j`` is visible from ``i`` exactly when the
    slope to ``j`` strictly exceeds every intermediate slope.
    """
    values = _as_float_array(series)
    n = values.size
    graph = Graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
        max_slope = -np.inf
        vi = values[i]
        for j in range(i + 1, n):
            slope = (values[j] - vi) / (j - i)
            if slope > max_slope:
                if j > i + 1:
                    graph.add_edge(i, j)
                max_slope = slope
    return graph


def _connect_pivot(values: np.ndarray, graph: Graph, lo: int, hi: int, k: int) -> None:
    """Connect pivot ``k`` (the argmax on [lo, hi]) to all vertices it sees
    within the range, using the max-slope sweep in both directions."""
    vk = values[k]
    # Scan left of the pivot.
    max_slope = -np.inf
    for j in range(k - 1, lo - 1, -1):
        slope = (values[j] - vk) / (k - j)
        if slope > max_slope:
            graph.add_edge(k, j)
            max_slope = slope
    # Scan right of the pivot.
    max_slope = -np.inf
    for j in range(k + 1, hi + 1):
        slope = (values[j] - vk) / (j - k)
        if slope > max_slope:
            graph.add_edge(k, j)
            max_slope = slope


def visibility_graph_dc(series: Sequence[float]) -> Graph:
    """Natural visibility graph via divide and conquer on the maximum.

    The maximum bar on an interval blocks every line of sight between
    vertices on its two sides (visibility is strict, so ties block as
    well), hence all cross edges are incident to the pivot.  Connecting
    the pivot by two linear sweeps and recursing on both halves yields
    O(n log n) expected work for non-degenerate series.
    """
    values = _as_float_array(series)
    n = values.size
    graph = Graph(n)
    if n == 0:
        return graph
    # Explicit stack instead of recursion: monotone series degrade the
    # recursion depth to O(n), which would overflow Python's stack.
    stack: list[tuple[int, int]] = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi <= lo:
            continue
        k = lo + int(np.argmax(values[lo : hi + 1]))
        _connect_pivot(values, graph, lo, hi, k)
        if k - 1 > lo:
            stack.append((lo, k - 1))
        if hi > k + 1:
            stack.append((k + 1, hi))
        # Intervals of length 2 still need their chain edge, which the
        # pivot sweep already added (pivot sees its neighbours).
    return graph


def visibility_graph(series: Sequence[float]) -> Graph:
    """Natural visibility graph of ``series`` (divide-and-conquer builder)."""
    return visibility_graph_dc(series)


def horizontal_visibility_graph(series: Sequence[float]) -> Graph:
    """Horizontal visibility graph via the O(n) stack algorithm.

    Processing values left to right, each new bar connects to every
    shorter bar popped from the stack plus the first bar at least as
    tall, which then occludes everything further left.
    """
    values = _as_float_array(series)
    n = values.size
    graph = Graph(n)
    stack: list[int] = []
    for j in range(n):
        vj = values[j]
        while stack and values[stack[-1]] < vj:
            graph.add_edge(stack.pop(), j)
        if stack:
            graph.add_edge(stack[-1], j)
            # Equal-height bars occlude each other for everything beyond,
            # so the occluded equal bar can be dropped.
            if values[stack[-1]] == vj:
                stack.pop()
        stack.append(j)
    return graph


def horizontal_visibility_graph_naive(series: Sequence[float]) -> Graph:
    """Reference O(n^2) HVG builder (used to validate the stack variant)."""
    values = _as_float_array(series)
    n = values.size
    graph = Graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
        for j in range(i + 2, n):
            bound = min(values[i], values[j])
            if np.all(values[i + 1 : j] < bound):
                graph.add_edge(i, j)
    return graph
