"""Graph substrate: containers, visibility-graph builders and statistics.

This subpackage replaces the external graph tooling used by the paper
(networkx for structure, PGD for graphlet counting) with a self-contained,
numpy-backed implementation tuned for the small, sparse graphs produced by
time-series visibility transforms.
"""

from repro.graph.adjacency import Graph
from repro.graph.directed import (
    WeightedGraph,
    directed_visibility_degrees,
    irreversibility_kld,
    weighted_strength_statistics,
    weighted_visibility_graph,
)
from repro.graph.extended_metrics import extended_graph_statistics
from repro.graph.fast import (
    CSRGraph,
    fast_horizontal_visibility_graph,
    fast_visibility_graph,
    visibility_graphs,
    visibility_graphs_batch,
)
from repro.graph.incremental import SlidingGraphWindow, SlidingVisibilityGraph
from repro.graph.metrics import (
    assortativity_coefficient,
    degeneracy,
    degree_statistics,
    density,
    graph_statistics,
)
from repro.graph.motifs import (
    CONNECTED_MOTIFS_3,
    CONNECTED_MOTIFS_4,
    DISCONNECTED_MOTIFS_3,
    DISCONNECTED_MOTIFS_4,
    MOTIF_NAMES,
    MotifCounts,
    count_motifs,
)
from repro.graph.visibility import (
    horizontal_visibility_graph,
    visibility_graph,
    visibility_graph_dc,
    visibility_graph_naive,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "fast_visibility_graph",
    "fast_horizontal_visibility_graph",
    "visibility_graphs",
    "visibility_graphs_batch",
    "SlidingVisibilityGraph",
    "SlidingGraphWindow",
    "visibility_graph",
    "visibility_graph_naive",
    "visibility_graph_dc",
    "horizontal_visibility_graph",
    "count_motifs",
    "MotifCounts",
    "MOTIF_NAMES",
    "CONNECTED_MOTIFS_3",
    "CONNECTED_MOTIFS_4",
    "DISCONNECTED_MOTIFS_3",
    "DISCONNECTED_MOTIFS_4",
    "density",
    "degeneracy",
    "assortativity_coefficient",
    "degree_statistics",
    "graph_statistics",
    "extended_graph_statistics",
    "WeightedGraph",
    "directed_visibility_degrees",
    "irreversibility_kld",
    "weighted_visibility_graph",
    "weighted_strength_statistics",
]
