"""Delta-maintained graph metrics for the streaming tier.

The batch metric layer (:mod:`repro.graph.metrics`,
:mod:`repro.graph.motifs`, :mod:`repro.graph.extended_metrics`) is a set
of stateless functions over a finished graph.  On a stride-1 sliding
window those functions dominate the online tick: the window graph is
maintained incrementally (:mod:`repro.graph.incremental`), but every
globally-coupled metric was recomputed from scratch per tick.

This module re-expresses those metrics as **states** fed by the edge
delta stream the sliding structures emit:

* :class:`GraphDelta` — one vertex-level event (``add`` with the edges
  the new point created, ``remove`` with the edges the evicted point
  owned, or ``clear``).
* :class:`MetricState` — the two-method protocol every state implements:
  ``apply(delta)`` folds one event into O(degree)-local accumulators,
  ``value()`` derives the metric through the *same* final reduction the
  batch function uses.  Integer metrics are therefore exactly equal and
  derived floats bit-identical to batch, by construction — property
  tested on every prefix and window in
  ``tests/test_incremental_metrics_property.py``.
* :class:`IncrementalMetricBank` — per-graph bundle that subscribes to a
  :class:`~repro.graph.incremental.SlidingVisibilityGraph` and exposes
  drop-in replacements for :func:`~repro.graph.metrics.graph_statistics`,
  :func:`~repro.graph.motifs.count_motifs` and
  :func:`~repro.graph.extended_metrics.extended_graph_statistics`.

Cost model per tick (one evict + one push): every accumulator update is
local to the changed vertex's neighbourhood — O(degree) set/dict work
for the degree moments and triangle/codegree tables, O(degree^2) for the
4-clique increments — versus the batch layer's full O(n + m·d) sweep.
Degeneracy is the one metric without a cheap local delta; it moves by at
most one per vertex event (removing a vertex lowers no core number by
more than one, and the reverse bounds insertion), so
:class:`KCoreState` tracks a drift radius and re-certifies with a
binary search of vectorized k-core peels over ``[last - drift,
last + drift]``.  Spectral metrics (bipartivity, eigencentrality,
closeness) are recomputed from the incrementally maintained CSR — they
are already cheap relative to the old motif recomputation and stay
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.graph.extended_metrics import (
    _adjacency_matrix,
    average_clustering_from_counts,
    bipartivity,
    closeness_centrality_stats,
    degree_entropy_from_degrees,
    degree_variance_from_degrees,
    eigenvector_centrality_stats,
    transitivity_from_counts,
)
from repro.graph.fast import CSRGraph
from repro.graph.metrics import (
    assortativity_from_sums,
    degree_statistics_from_degrees,
    density_from_counts,
)
from repro.graph.motifs import MotifCounts, MotifPrimitives, motifs_from_primitives

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class GraphDelta:
    """One vertex-level change to a sliding window graph.

    ``op`` is ``"add"`` (``vertex`` entered with edges to ``neighbors``),
    ``"remove"`` (``vertex`` left, destroying its edges to ``neighbors``
    — the sliding structures evict the oldest point, whose surviving
    neighbours are exactly its right-adjacency), or ``"clear"`` (window
    reset; ``vertex``/``neighbors`` are meaningless).  Vertex ids are
    the sliding structures' *global* indices: they never repeat, so
    states may key dictionaries by them without collision.
    """

    op: str
    vertex: int
    neighbors: np.ndarray


#: A ``clear`` event, shared (the payload carries no information).
CLEAR_DELTA = GraphDelta("clear", -1, _EMPTY)


class MetricState(Protocol):
    """Protocol for delta-maintained metrics.

    ``apply`` folds one :class:`GraphDelta` into internal accumulators;
    ``value`` derives the current metric.  States must accept any legal
    event sequence (interleaved adds/removes/clears) and must keep
    ``value()`` equal to the corresponding batch function applied to the
    current graph.
    """

    def apply(self, delta: GraphDelta) -> None: ...

    def value(self): ...


class DensityState:
    """Vertex/edge counters; ``value()`` == :func:`~repro.graph.metrics.density`."""

    __slots__ = ("_n", "_m")

    def __init__(self) -> None:
        self._n = 0
        self._m = 0

    def apply(self, delta: GraphDelta) -> None:
        if delta.op == "add":
            self._n += 1
            self._m += delta.neighbors.size
        elif delta.op == "remove":
            self._n -= 1
            self._m -= delta.neighbors.size
        else:
            self._n = 0
            self._m = 0

    def value(self) -> float:
        return density_from_counts(self._n, self._m)


class DegreeStatisticsState:
    """``(max, min, mean)`` degree over the window.

    The running accumulator — the window degree array — already lives in
    the sliding graph structure, maintained O(degree) per event; this
    state borrows it through ``degrees_provider`` and applies the shared
    batch reduction (:func:`~repro.graph.metrics.degree_statistics_from_degrees`),
    so ``apply`` has nothing left to fold.
    """

    __slots__ = ("_degrees",)

    def __init__(self, degrees_provider: Callable[[], np.ndarray]) -> None:
        self._degrees = degrees_provider

    def apply(self, delta: GraphDelta) -> None:
        pass

    def value(self) -> tuple[float, float, float]:
        return degree_statistics_from_degrees(self._degrees())


class AssortativityState:
    """Exact integer moment sums for degree assortativity.

    Maintains ``m``, ``d2 = sum deg^2``, ``d3 = sum deg^3`` and
    ``e_prod = sum_e deg_u deg_v`` under single-edge updates (each
    O(degree): adding an edge at ``u`` raises every ``u``-incident
    product by its neighbour's degree).  ``value()`` feeds them to
    :func:`~repro.graph.metrics.assortativity_from_sums` — the same
    final reduction the batch path uses, so the float is bit-identical.
    """

    __slots__ = ("_adj", "_m", "_d2", "_d3", "_e_prod")

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._adj: dict[int, set[int]] = {}
        self._m = 0
        self._d2 = 0
        self._d3 = 0
        self._e_prod = 0

    def apply(self, delta: GraphDelta) -> None:
        if delta.op == "add":
            v = delta.vertex
            self._adj[v] = set()
            for nb in delta.neighbors.tolist():
                self._add_edge(v, nb)
        elif delta.op == "remove":
            v = delta.vertex
            for nb in delta.neighbors.tolist():
                self._remove_edge(v, nb)
            del self._adj[v]
        else:
            self._reset()

    def _add_edge(self, u: int, w: int) -> None:
        adj = self._adj
        au, aw = adj[u], adj[w]
        du, dw = len(au), len(aw)
        self._d2 += 2 * (du + dw) + 2
        self._d3 += 3 * du * (du + 1) + 3 * dw * (dw + 1) + 2
        s = 0
        for y in au:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        for y in aw:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        self._e_prod += s + (du + 1) * (dw + 1)
        au.add(w)
        aw.add(u)
        self._m += 1

    def _remove_edge(self, u: int, w: int) -> None:
        adj = self._adj
        au, aw = adj[u], adj[w]
        au.discard(w)
        aw.discard(u)
        self._m -= 1
        du, dw = len(au), len(aw)
        self._d2 -= 2 * (du + dw) + 2
        self._d3 -= 3 * du * (du + 1) + 3 * dw * (dw + 1) + 2
        s = 0
        for y in au:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        for y in aw:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        self._e_prod -= s + (du + 1) * (dw + 1)

    def value(self) -> float:
        return assortativity_from_sums(self._m, self._d2, self._d3, self._e_prod)


class MotifState:
    """All motif primitives of :class:`~repro.graph.motifs.MotifPrimitives`
    as running accumulators under single-edge updates.

    Per edge ``(u, w)`` the update is neighbourhood-local: degree-moment
    deltas are closed forms in the endpoint degrees, the codegree table
    (non-induced 4-cycle numerator) shifts only for pairs through ``u``
    or ``w``, and the triangle tables (per-edge ``tri_e``, per-vertex
    ``tri_v``) shift only on the common neighbourhood — which also
    yields the new 4-cliques by direct enumeration, exactly as the batch
    counter does per edge.  ``value()`` hands the primitives to
    :func:`~repro.graph.motifs.motifs_from_primitives`, the identical
    closed-form derivation the batch path uses, so equal primitives give
    equal counts in exact integers (and
    :func:`~repro.graph.motifs._validate`'s partition checks run on
    every call as a safety net).
    """

    __slots__ = (
        "_adj",
        "_tri_v",
        "_tri_e",
        "_codeg",
        "_n",
        "_m",
        "_t",
        "_w",
        "_deg_c3",
        "_d2",
        "_e_prod",
        "_td",
        "_paired",
        "_tri_pair",
        "_k4",
    )

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._adj: dict[int, set[int]] = {}
        #: Triangles through each vertex (absent == 0).
        self._tri_v: dict[int, int] = {}
        #: Triangles through each edge, keyed ``(min, max)`` (absent == 0).
        self._tri_e: dict[tuple[int, int], int] = {}
        #: Common-neighbour counts per vertex pair (absent == 0).
        self._codeg: dict[tuple[int, int], int] = {}
        self._n = 0
        self._m = 0
        self._t = 0  # triangles
        self._w = 0  # sum_v C(deg_v, 2)
        self._deg_c3 = 0  # sum_v C(deg_v, 3)
        self._d2 = 0  # sum_v deg_v^2
        self._e_prod = 0  # sum_e deg_u * deg_v
        self._td = 0  # sum_v tri_v * deg_v
        self._paired = 0  # sum_pairs C(codeg, 2)  (== 2 * non-induced C4)
        self._tri_pair = 0  # sum_e C(tri_e, 2)
        self._k4 = 0

    def apply(self, delta: GraphDelta) -> None:
        if delta.op == "add":
            v = delta.vertex
            self._adj[v] = set()
            self._n += 1
            for nb in delta.neighbors.tolist():
                self._add_edge(v, nb)
        elif delta.op == "remove":
            v = delta.vertex
            for nb in delta.neighbors.tolist():
                self._remove_edge(v, nb)
            del self._adj[v]
            self._tri_v.pop(v, None)
            self._n -= 1
        else:
            self._reset()

    def _add_edge(self, u: int, w: int) -> None:
        adj = self._adj
        au, aw = adj[u], adj[w]
        du, dw = len(au), len(aw)
        tv = self._tri_v
        # Degree moments: deg(u): du -> du + 1, deg(w): dw -> dw + 1.
        self._w += du + dw
        self._deg_c3 += du * (du - 1) // 2 + dw * (dw - 1) // 2
        self._d2 += 2 * (du + dw) + 2
        # Every edge at u (resp. w) has its u-side degree raised by one,
        # and the new edge contributes its own endpoint product.
        s = 0
        for y in au:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        for y in aw:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        self._e_prod += s + (du + 1) * (dw + 1)
        # tri_v * deg: the endpoint degrees rose with tri_v unchanged so far.
        self._td += tv.get(u, 0) + tv.get(w, 0)
        # Codegrees: u becomes a new common neighbour of (w, x) for every
        # prior neighbour x of u, and symmetrically.  C(c+1,2) - C(c,2) = c.
        codeg = self._codeg
        for x in au:  # repro: allow[determinism] exact integer sum, order-free
            key = (w, x) if w < x else (x, w)
            c = codeg.get(key, 0)
            self._paired += c
            codeg[key] = c + 1
        for y in aw:  # repro: allow[determinism] exact integer sum, order-free
            key = (u, y) if u < y else (y, u)
            c = codeg.get(key, 0)
            self._paired += c
            codeg[key] = c + 1
        # Triangles closed by the new edge: one per common neighbour.
        common = au & aw
        t = len(common)
        if t:
            self._t += t
            tri_e = self._tri_e
            tri_e[(u, w) if u < w else (w, u)] = t
            self._tri_pair += t * (t - 1) // 2
            k4 = 0
            clist = sorted(common)
            for idx, c in enumerate(clist):
                key = (u, c) if u < c else (c, u)
                e = tri_e.get(key, 0)
                self._tri_pair += e
                tri_e[key] = e + 1
                key = (w, c) if w < c else (c, w)
                e = tri_e.get(key, 0)
                self._tri_pair += e
                tri_e[key] = e + 1
                tv[c] = tv.get(c, 0) + 1
                ac = adj[c]
                self._td += len(ac)
                # New 4-cliques {u, w, c, c2}: adjacent pairs of common
                # neighbours, enumerated exactly as the batch counter does.
                for c2 in clist[idx + 1 :]:
                    if c2 in ac:
                        k4 += 1
            self._k4 += k4
            tv[u] = tv.get(u, 0) + t
            tv[w] = tv.get(w, 0) + t
            self._td += t * (du + 1) + t * (dw + 1)
        au.add(w)
        aw.add(u)
        self._m += 1

    def _remove_edge(self, u: int, w: int) -> None:
        # Exact mirror of _add_edge: after detaching the edge, the local
        # degrees equal the pre-add values, so every delta negates.
        adj = self._adj
        au, aw = adj[u], adj[w]
        au.discard(w)
        aw.discard(u)
        self._m -= 1
        du, dw = len(au), len(aw)
        tv = self._tri_v
        common = au & aw
        t = len(common)
        if t:
            self._t -= t
            tri_e = self._tri_e
            del tri_e[(u, w) if u < w else (w, u)]
            self._tri_pair -= t * (t - 1) // 2
            k4 = 0
            clist = sorted(common)
            for idx, c in enumerate(clist):
                key = (u, c) if u < c else (c, u)
                e = tri_e[key] - 1
                self._tri_pair -= e
                if e:
                    tri_e[key] = e
                else:
                    del tri_e[key]
                key = (w, c) if w < c else (c, w)
                e = tri_e[key] - 1
                self._tri_pair -= e
                if e:
                    tri_e[key] = e
                else:
                    del tri_e[key]
                nv = tv[c] - 1
                if nv:
                    tv[c] = nv
                else:
                    del tv[c]
                ac = adj[c]
                self._td -= len(ac)
                for c2 in clist[idx + 1 :]:
                    if c2 in ac:
                        k4 += 1
            self._k4 -= k4
            for v in (u, w):
                nv = tv[v] - t
                if nv:
                    tv[v] = nv
                else:
                    del tv[v]
            self._td -= t * (du + 1) + t * (dw + 1)
        codeg = self._codeg
        for x in au:  # repro: allow[determinism] exact integer sum, order-free
            key = (w, x) if w < x else (x, w)
            c = codeg[key] - 1
            self._paired -= c
            if c:
                codeg[key] = c
            else:
                del codeg[key]
        for y in aw:  # repro: allow[determinism] exact integer sum, order-free
            key = (u, y) if u < y else (y, u)
            c = codeg[key] - 1
            self._paired -= c
            if c:
                codeg[key] = c
            else:
                del codeg[key]
        self._w -= du + dw
        self._deg_c3 -= du * (du - 1) // 2 + dw * (dw - 1) // 2
        self._d2 -= 2 * (du + dw) + 2
        s = 0
        for y in au:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        for y in aw:  # repro: allow[determinism] exact integer sum, order-free
            s += len(adj[y])
        self._e_prod -= s + (du + 1) * (dw + 1)
        self._td -= tv.get(u, 0) + tv.get(w, 0)

    def primitives(self) -> MotifPrimitives:
        """Current aggregates in the batch layer's primitive vocabulary."""
        return MotifPrimitives(
            n=self._n,
            m=self._m,
            triangles=self._t,
            wedges_noninduced=self._w,
            degree_choose3=self._deg_c3,
            k4=self._k4,
            cycles_noninduced=self._paired // 2,
            tri_pair_sum=self._tri_pair,
            tailed_noninduced=self._td - 6 * self._t,
            paths_noninduced=self._e_prod - self._d2 + self._m - 3 * self._t,
            m33=self._n * self._m - self._d2 + 3 * self._t,
        )

    def value(self) -> MotifCounts:
        return motifs_from_primitives(self.primitives())

    def triangle_edge_sum(self) -> int:
        """Sum over edges of endpoint co-degrees (three per triangle) —
        the transitivity numerator the batch path accumulates."""
        return 3 * self._t

    def wedge_sum(self) -> int:
        """``sum_v C(deg_v, 2)`` — the transitivity denominator."""
        return self._w

    def local_triangles(self, lo: int, hi: int) -> np.ndarray:
        """Per-vertex triangle counts for global vertices ``lo..hi-1``,
        in window order (the batch ``average_clustering`` link counts)."""
        tv = self._tri_v
        return np.fromiter(
            (tv.get(g, 0) for g in range(lo, hi)), dtype=np.int64, count=hi - lo
        )


#: Beyond this many unaccounted vertex events the bounded k-core repair
#: range is wide enough that a full-range binary search is no slower.
_KCORE_FULL_REPAIR_DRIFT = 32


def _csr_rows_of(indptr: np.ndarray, indices: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Concatenated CSR rows of ``vs`` (vectorized gather)."""
    starts = indptr[vs]
    lens = indptr[vs + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return _EMPTY
    shift = np.cumsum(lens) - lens
    offsets = np.arange(total, dtype=np.int64) - np.repeat(shift, lens)
    return indices[np.repeat(starts, lens) + offsets]


def _has_kcore(csr: CSRGraph, degrees: np.ndarray, k: int) -> bool:
    """Whether a non-empty ``k``-core survives iterative peeling."""
    if k <= 0:
        return csr.n_vertices > 0
    deg = degrees.astype(np.int64, copy=True)
    alive = np.ones(deg.size, dtype=bool)
    kill = deg < k
    while kill.any():
        alive &= ~kill
        if not alive.any():
            return False
        nbrs = _csr_rows_of(csr.indptr, csr.indices, np.nonzero(kill)[0])
        if nbrs.size:
            deg -= np.bincount(nbrs, minlength=deg.size)
        kill = alive & (deg < k)
    return True


class KCoreState:
    """Degeneracy by bounded lazy repair.

    A single vertex insertion or deletion moves the degeneracy by at
    most one (removing a vertex cannot drop any subgraph's minimum
    degree by more than one, and insertion is its inverse), so after
    ``drift`` unaccounted events the true value lies in ``[last - drift,
    last + drift]``.  ``value()`` re-certifies with a binary search of
    vectorized k-core peels over that interval on the incrementally
    maintained CSR, falling back to the full ``[0, max_degree]`` range
    on large drift or after a clear — the full-recompute fallback.
    The result is the exact degeneracy, identical to the batch
    :func:`~repro.graph.metrics.degeneracy`.
    """

    __slots__ = ("_csr_provider", "_last", "_drift")

    def __init__(self, csr_provider: Callable[[], CSRGraph]) -> None:
        self._csr_provider = csr_provider
        self._last: int | None = None
        self._drift = 0

    def apply(self, delta: GraphDelta) -> None:
        if delta.op == "clear":
            self._last = None
            self._drift = 0
        else:
            self._drift += 1

    def value(self) -> int:
        csr = self._csr_provider()
        n = csr.n_vertices
        if n == 0:
            self._last, self._drift = 0, 0
            return 0
        degrees = csr.degrees()
        max_degree = int(degrees.max())
        if self._last is None or self._drift > _KCORE_FULL_REPAIR_DRIFT:
            lo, hi = 0, max_degree
        else:
            lo = max(0, self._last - self._drift)
            hi = min(max_degree, self._last + self._drift)
        # Invariant: a lo-core exists (lo == 0, or lo is within drift
        # below the last certified degeneracy); search the largest k.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if _has_kcore(csr, degrees, mid):
                lo = mid
            else:
                hi = mid - 1
        self._last, self._drift = lo, 0
        return lo


class IncrementalMetricBank:
    """Per-graph bundle of delta-maintained metric states.

    Subscribes to one :class:`~repro.graph.incremental.SlidingVisibilityGraph`
    and mirrors the batch feature functions: :meth:`statistics` ==
    ``graph_statistics(g)``, :meth:`motifs` == ``count_motifs(g)``,
    :meth:`extended` == ``extended_graph_statistics(g)`` for the current
    window graph ``g`` — integers exactly, derived floats bit for bit.
    Construct with only the banks the feature configuration needs;
    ``need_extended`` implies the motif accumulators (transitivity and
    clustering derive from the triangle tables).
    """

    __slots__ = ("_svg", "_states", "motif_state", "_assort", "_kcore", "_density", "_degstats", "phase_clock")

    def __init__(
        self,
        svg,
        *,
        need_motifs: bool = True,
        need_stats: bool = True,
        need_extended: bool = False,
        phase_clock=None,
    ) -> None:
        self._svg = svg
        self._states: list[MetricState] = []
        self.motif_state: MotifState | None = None
        self._assort: AssortativityState | None = None
        self._kcore: KCoreState | None = None
        self._density: DensityState | None = None
        self._degstats: DegreeStatisticsState | None = None
        self.phase_clock = phase_clock
        if need_motifs or need_extended:
            self.motif_state = MotifState()
            self._states.append(self.motif_state)
        if need_stats:
            self._assort = AssortativityState()
            self._kcore = KCoreState(svg.csr)
            self._density = DensityState()
            self._degstats = DegreeStatisticsState(svg.degree_array)
            self._states.extend(
                [self._assort, self._kcore, self._density, self._degstats]
            )
        svg.subscribe(self.apply)

    def apply(self, delta: GraphDelta) -> None:
        clock = self.phase_clock
        if clock is None:
            for state in self._states:
                state.apply(delta)
            return
        start = clock.now()
        for state in self._states:
            state.apply(delta)
        clock.add(clock.now() - start)

    def statistics(self) -> dict[str, float]:
        """Drop-in for ``graph_statistics(window_graph)``."""
        d_max, d_min, d_mean = self._degstats.value()
        return {
            "density": self._density.value(),
            "kcore": float(self._kcore.value()),
            "assortativity": self._assort.value(),
            "degree_max": d_max,
            "degree_min": d_min,
            "degree_mean": d_mean,
        }

    def motifs(self) -> MotifCounts:
        """Drop-in for ``count_motifs(window_graph)``."""
        return self.motif_state.value()

    def extended(self) -> dict[str, float]:
        """Drop-in for ``extended_graph_statistics(window_graph)``.

        Entropy, variance, transitivity and average clustering derive
        from the maintained degree array and triangle tables through the
        shared batch reductions; the spectral and BFS metrics are
        recomputed from the incrementally maintained CSR (identical to
        the batch graph, so the floats agree bit for bit).
        """
        svg = self._svg
        motif = self.motif_state
        degrees = svg.degree_array()
        graph = svg.graph()
        adjacency = _adjacency_matrix(graph) if graph.n_edges else None
        ev_max, ev_mean, ev_std = eigenvector_centrality_stats(
            graph, adjacency=adjacency
        )
        close_mean, close_max = closeness_centrality_stats(graph)
        lo = svg._lo
        return {
            "DegEntropy": degree_entropy_from_degrees(degrees),
            "DegVariance": degree_variance_from_degrees(degrees),
            "Bipartivity": bipartivity(graph, adjacency=adjacency),
            "EigCentMax": ev_max,
            "EigCentMean": ev_mean,
            "EigCentStd": ev_std,
            "CloseMean": close_mean,
            "CloseMax": close_max,
            "Transitivity": transitivity_from_counts(
                motif.triangle_edge_sum(), motif.wedge_sum()
            ),
            "AvgClustering": average_clustering_from_counts(
                motif.local_triangles(lo, lo + len(degrees)), degrees
            ),
        }
